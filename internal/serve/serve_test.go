package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emvia/internal/telemetry"
	"emvia/internal/trace"
)

// tinySpec is a real end-to-end job small enough for the race detector:
// a 6×6 synthetic grid, weakest-link criterion (every trial's TTF is
// finite), six trials.
const tinySpec = `{"engine":"mc","criterion":"wl","grid":{"name":"PG1","nx":6,"ny":6,"pad_period":3,"calibrate_ir":0.05},"trials":6,"seed":7}`

// newTestServer installs fresh telemetry and trace globals (so counter
// assertions see exactly this test's traffic) and boots a server plus its
// httptest host. Serve tests share process-wide state and therefore must
// not run in parallel with each other.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	telemetry.SetDefault(telemetry.New())
	trace.SetDefault(trace.New(trace.Options{Ring: trace.NewRing(256), DisableSamples: true}))
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
		ts.Close()
		telemetry.SetDefault(nil)
		trace.SetDefault(nil)
	})
	return s, ts
}

func counter(name string) int64 {
	return telemetry.Default().Counter(name).Value()
}

// submit POSTs a spec body and decodes the response envelope.
func submit(t *testing.T, ts *httptest.Server, body string) (int, submitResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp.StatusCode, out, resp.Header
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status: code %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return statusResponse{}
}

// getResult fetches /result, returning the status code and body.
func getResult(t *testing.T, ts *httptest.Server, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading result: %v", err)
	}
	return resp.StatusCode, body
}

// TestSubmitPollResult is the happy path plus the dedup contract, end to
// end through the real engine: submit → poll → manifest, then the same
// spec again — served from the result cache with exactly one solve ever
// recorded, and byte-identical manifest bytes.
func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 2})

	code, sub, _ := submit(t, ts, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d, want 202", code)
	}
	if sub.ID == "" || sub.Hash == "" || sub.State != StateQueued {
		t.Fatalf("submit response %+v", sub)
	}

	st := waitTerminal(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %q (error %q), want done", st.State, st.Error)
	}
	if st.TrialsDone != 6 || st.TrialsTotal != 6 {
		t.Errorf("progress %d/%d, want 6/6", st.TrialsDone, st.TrialsTotal)
	}
	if st.Attempts != 1 {
		t.Errorf("attempts %d, want 1", st.Attempts)
	}

	rcode, body := getResult(t, ts, sub.ID)
	if rcode != http.StatusOK {
		t.Fatalf("result: code %d, body %s", rcode, body)
	}
	var m ResultManifest
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding manifest: %v", err)
	}
	if m.ContentHash != sub.Hash {
		t.Errorf("manifest hash %s, submit hash %s", m.ContentHash, sub.Hash)
	}
	if m.Engine != "mc" || m.Trials != 6 || m.FiniteTrials != 6 {
		t.Errorf("manifest engine=%s trials=%d finite=%d, want mc/6/6", m.Engine, m.Trials, m.FiniteTrials)
	}
	if p50 := m.PercentilesYears["p50"]; !(p50 > 0) {
		t.Errorf("p50 = %g, want positive", p50)
	}
	if m.Spec == nil || m.Spec.Trials != 6 || m.Spec.Seed != 7 {
		t.Errorf("manifest spec not the resolved submission: %+v", m.Spec)
	}

	// Duplicate submission: answered from the result cache, zero new solves.
	solvesBefore := counter(telemetry.ServeSolves)
	code2, sub2, _ := submit(t, ts, tinySpec)
	if code2 != http.StatusOK || sub2.Dedup != "result-cache" || sub2.State != StateDone {
		t.Fatalf("duplicate submit: code %d resp %+v, want 200 result-cache done", code2, sub2)
	}
	if sub2.Hash != sub.Hash {
		t.Errorf("duplicate hash %s, want %s", sub2.Hash, sub.Hash)
	}
	rcode2, body2 := getResult(t, ts, sub2.ID)
	if rcode2 != http.StatusOK || string(body2) != string(body) {
		t.Errorf("dedup'd manifest differs from the original (codes %d/%d)", rcode, rcode2)
	}
	if got := counter(telemetry.ServeSolves); got != solvesBefore {
		t.Errorf("duplicate submission ran %d extra solves", got-solvesBefore)
	}
	if got := counter(telemetry.ServeSolves); got != 1 {
		t.Errorf("total solves %d, want exactly 1", got)
	}
	if got := counter(telemetry.ServeDedupCacheHits); got != 1 {
		t.Errorf("dedup cache hits %d, want 1", got)
	}
}

// TestManifestWorkerInvariance pins the determinism contract the content
// hash relies on: the same spec solved under different per-job worker
// budgets (mc's per-trial seed splitting) yields byte-identical manifests.
func TestManifestWorkerInvariance(t *testing.T) {
	var manifests []string
	for _, workers := range []int{1, 2} {
		func() {
			telemetry.SetDefault(telemetry.New())
			trace.SetDefault(trace.New(trace.Options{Ring: trace.NewRing(256), DisableSamples: true}))
			defer telemetry.SetDefault(nil)
			defer trace.SetDefault(nil)
			s := NewServer(Config{JobWorkers: workers})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				s.Drain(ctx) //nolint:errcheck
			}()
			code, sub, _ := submit(t, ts, tinySpec)
			if code != http.StatusAccepted {
				t.Fatalf("workers=%d: submit code %d", workers, code)
			}
			if st := waitTerminal(t, ts, sub.ID); st.State != StateDone {
				t.Fatalf("workers=%d: state %q error %q", workers, st.State, st.Error)
			}
			rcode, body := getResult(t, ts, sub.ID)
			if rcode != http.StatusOK {
				t.Fatalf("workers=%d: result code %d", workers, rcode)
			}
			manifests = append(manifests, string(body))
		}()
	}
	if manifests[0] != manifests[1] {
		t.Errorf("manifests differ between worker budgets 1 and 2:\n--- workers=1\n%s\n--- workers=2\n%s", manifests[0], manifests[1])
	}
}

// gatedRunner returns a stub Runner that signals each start and blocks
// until released (or its context ends).
func gatedRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, spec *JobSpec, opts RunOptions) (*runOutput, error) {
		started <- opts.Label
		select {
		case <-release:
			return &runOutput{materialHash: "test", solver: "stub"}, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: %w", ctx.Err())
		}
	}
}

// specWithSeed derives distinct-content specs from tinySpec.
func specWithSeed(seed int) string {
	return strings.Replace(tinySpec, `"seed":7`, fmt.Sprintf(`"seed":%d`, seed), 1)
}

// TestInflightDedup: a submission identical to a running job attaches to
// it — same job ID, no second execution.
func TestInflightDedup(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Runner: gatedRunner(started, release)})

	code, first, _ := submit(t, ts, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: code %d", code)
	}
	<-started // the job is now running

	code2, second, _ := submit(t, ts, tinySpec)
	if code2 != http.StatusOK || second.Dedup != "in-flight" {
		t.Fatalf("duplicate submit: code %d resp %+v, want 200 in-flight", code2, second)
	}
	if second.ID != first.ID {
		t.Errorf("duplicate got job %s, want the incumbent %s", second.ID, first.ID)
	}
	if got := counter(telemetry.ServeDedupInflightHits); got != 1 {
		t.Errorf("inflight dedup hits %d, want 1", got)
	}

	close(release)
	if st := waitTerminal(t, ts, first.ID); st.State != StateDone {
		t.Fatalf("job state %q, want done", st.State)
	}
	if got := counter(telemetry.ServeSolves); got != 1 {
		t.Errorf("solves %d, want exactly 1", got)
	}
}

// TestQueueFull: submissions beyond the queue capacity get 429 with a
// Retry-After hint, and are not admitted.
func TestQueueFull(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{QueueCap: 1, Runner: gatedRunner(started, release)})

	// First job occupies the executor, second the single queue slot.
	if code, _, _ := submit(t, ts, specWithSeed(1)); code != http.StatusAccepted {
		t.Fatalf("job 1: code %d", code)
	}
	<-started
	if code, _, _ := submit(t, ts, specWithSeed(2)); code != http.StatusAccepted {
		t.Fatalf("job 2: code %d", code)
	}

	code, _, hdr := submit(t, ts, specWithSeed(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3: code %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if got := counter(telemetry.ServeRejectedFull); got != 1 {
		t.Errorf("rejected_queue_full %d, want 1", got)
	}

	close(release)
}

// TestJobDeadline: a job that exceeds its own deadline lands in
// deadline_exceeded, its result endpoint answers 504, and the status
// endpoint reports the partial trial progress observed before the cut.
func TestJobDeadline(t *testing.T) {
	runner := func(ctx context.Context, spec *JobSpec, opts RunOptions) (*runOutput, error) {
		// Complete three trials through the real tracer (they land in the
		// ring exactly like engine trials), then hang until the deadline.
		run := trace.Default().BeginRun(opts.Label, 3)
		for i := 0; i < 3; i++ {
			tr := run.Trial(i)
			tr.Begin(1)
			tr.End(float64(i+1)*1e7, 1)
		}
		run.End()
		<-ctx.Done()
		return nil, fmt.Errorf("stub: canceled at trial 3: %w", ctx.Err())
	}
	_, ts := newTestServer(t, Config{Runner: runner})

	spec := strings.Replace(tinySpec, `"trials":6`, `"trials":100,"timeout_seconds":0.3`, 1)
	code, sub, _ := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	st := waitTerminal(t, ts, sub.ID)
	if st.State != StateDeadline {
		t.Fatalf("state %q (error %q), want deadline_exceeded", st.State, st.Error)
	}
	if st.TrialsDone != 3 || st.TrialsTotal != 100 {
		t.Errorf("partial progress %d/%d, want 3/100", st.TrialsDone, st.TrialsTotal)
	}
	rcode, _ := getResult(t, ts, sub.ID)
	if rcode != http.StatusGatewayTimeout {
		t.Errorf("result code %d, want 504", rcode)
	}
	if got := counter(telemetry.ServeDeadlineExceeded); got != 1 {
		t.Errorf("deadline_exceeded count %d, want 1", got)
	}
}

// TestRetryTransient: Transient-wrapped failures are retried with backoff
// up to the attempt bound; the job then completes and the attempt count
// and retry counter agree.
func TestRetryTransient(t *testing.T) {
	calls := 0
	runner := func(ctx context.Context, spec *JobSpec, opts RunOptions) (*runOutput, error) {
		calls++
		if calls <= 2 {
			return nil, &Transient{Err: errors.New("flaky backend")}
		}
		return &runOutput{materialHash: "test", solver: "stub"}, nil
	}
	_, ts := newTestServer(t, Config{Runner: runner, MaxAttempts: 3, RetryBackoff: time.Millisecond})

	code, sub, _ := submit(t, ts, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	st := waitTerminal(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("state %q (error %q), want done", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts %d, want 3", st.Attempts)
	}
	if got := counter(telemetry.ServeRetries); got != 2 {
		t.Errorf("retries %d, want 2", got)
	}
	if got := counter(telemetry.ServeSolves); got != 3 {
		t.Errorf("solves %d, want 3 (one per attempt)", got)
	}
}

// TestRetryExhaustion: a persistently Transient job fails after the
// attempt bound instead of retrying forever.
func TestRetryExhaustion(t *testing.T) {
	runner := func(ctx context.Context, spec *JobSpec, opts RunOptions) (*runOutput, error) {
		return nil, &Transient{Err: errors.New("still flaky")}
	}
	_, ts := newTestServer(t, Config{Runner: runner, MaxAttempts: 2, RetryBackoff: time.Millisecond})

	_, sub, _ := submit(t, ts, tinySpec)
	st := waitTerminal(t, ts, sub.ID)
	if st.State != StateFailed {
		t.Fatalf("state %q, want failed", st.State)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts %d, want 2", st.Attempts)
	}
	if rcode, _ := getResult(t, ts, sub.ID); rcode != http.StatusInternalServerError {
		t.Errorf("result code %d, want 500", rcode)
	}
}

// TestGracefulDrain: draining lets the in-flight job and the queued
// backlog finish while new submissions are turned away with 503.
func TestGracefulDrain(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{QueueCap: 4, Runner: gatedRunner(started, release)})

	_, inflight, _ := submit(t, ts, specWithSeed(1))
	<-started
	_, queued, _ := submit(t, ts, specWithSeed(2))

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()

	// Admission flips to draining synchronously at the head of Drain; poll
	// briefly to absorb goroutine scheduling.
	deadline := time.Now().Add(2 * time.Second)
	var code int
	for time.Now().Before(deadline) {
		code, _, _ = submit(t, ts, specWithSeed(3))
		if code == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: code %d, want 503", code)
	}
	if got := counter(telemetry.ServeRejectedDraining); got < 1 {
		t.Errorf("rejected_draining %d, want ≥ 1", got)
	}

	close(release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{inflight.ID, queued.ID} {
		if st := getStatus(t, ts, id); st.State != StateDone {
			t.Errorf("job %s state %q after drain, want done", id, st.State)
		}
	}
}

// TestBadSubmissionsNeverEnqueue: every malformed payload is refused at
// the door — no job is created, no solve runs.
func TestBadSubmissionsNeverEnqueue(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bodies := []string{
		``,
		`]]]`,
		`{"grid":{},"frobnicate":1}`,
		`{"vdd":1e999,"grid":{}}`,
		`{"schema_version":99,"grid":{}}`,
		`{"deck":"x","grid":{}}`,
		`{"trials":1000000,"grid":{}}`,
	}
	for _, body := range bodies {
		code, _, _ := submit(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", body, code)
		}
	}
	if got := counter(telemetry.ServeSolves); got != 0 {
		t.Errorf("malformed submissions ran %d solves", got)
	}
	if got := counter(telemetry.ServeSubmitted); got != 0 {
		t.Errorf("malformed submissions counted as submitted: %d", got)
	}
}

// TestUnknownJob: the status, result and timeline endpoints 404 on unknown
// IDs.
func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events", "/v1/jobs/nope/timeline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: code %d, want 404", path, resp.StatusCode)
		}
	}
}

// getTimeline fetches and decodes /timeline.
func getTimeline(t *testing.T, ts *httptest.Server, id string) timelineResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/timeline")
	if err != nil {
		t.Fatalf("GET timeline: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET timeline: code %d", resp.StatusCode)
	}
	var tl timelineResponse
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatalf("decoding timeline: %v", err)
	}
	return tl
}

// TestTimelineEndpoint runs a real mc job end to end and checks its stage
// timeline covers the whole pipeline in order, that every span is sane, and
// that the stage spans landed in the per-stage latency histograms and the
// serve gauges returned to idle.
func TestTimelineEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, sub, _ := submit(t, ts, tinySpec)
	if st := waitTerminal(t, ts, sub.ID); st.State != StateDone {
		t.Fatalf("state %q, want done", st.State)
	}

	tl := getTimeline(t, ts, sub.ID)
	if tl.ID != sub.ID || tl.Hash != sub.Hash || tl.State != StateDone {
		t.Fatalf("timeline envelope %+v", tl)
	}
	want := []string{"admit", "queue-wait", "resolve", "compile", "factorize", "mc", "manifest"}
	if len(tl.Stages) != len(want) {
		t.Fatalf("stages = %+v, want %v", tl.Stages, want)
	}
	prevStart := -1.0
	for i, sp := range tl.Stages {
		if sp.Stage != want[i] {
			t.Errorf("stage[%d] = %q, want %q", i, sp.Stage, want[i])
		}
		if sp.DurationSeconds < 0 || sp.StartSeconds < prevStart {
			t.Errorf("stage[%d] %+v out of order or negative", i, sp)
		}
		prevStart = sp.StartSeconds
		h := telemetry.Default().Histogram(telemetry.ServeStageSeconds(sp.Stage)).Snapshot()
		if h.Count != 1 {
			t.Errorf("stage histogram %q count = %d, want 1", sp.Stage, h.Count)
		}
	}
	if d := telemetry.Default().Gauge(telemetry.ServeQueueDepth).Value(); d != 0 {
		t.Errorf("queue depth gauge = %v after completion, want 0", d)
	}
	if a := telemetry.Default().Gauge(telemetry.ServeJobsActive).Value(); a != 0 {
		t.Errorf("active jobs gauge = %v after completion, want 0", a)
	}
}

// TestLedgerReplaysJobSet: with a result dir, every terminal job — executed
// or answered from the result cache — appends exactly one ledger record,
// and the records replay the submitted job set with outcomes, dedup
// disposition and stage durations.
func TestLedgerReplaysJobSet(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{ResultDir: dir})

	_, j1, _ := submit(t, ts, specWithSeed(1))
	waitTerminal(t, ts, j1.ID)
	_, j2, _ := submit(t, ts, specWithSeed(2))
	waitTerminal(t, ts, j2.ID)
	code, j3, _ := submit(t, ts, specWithSeed(1)) // result-cache replay
	if code != http.StatusOK || j3.Dedup != "result-cache" {
		t.Fatalf("duplicate submit: code %d resp %+v", code, j3)
	}

	recs, skipped, err := ReadLedger(s.ledger.Path())
	if err != nil || skipped != 0 {
		t.Fatalf("ReadLedger: %v (skipped %d)", err, skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("ledger has %d records, want 3: %+v", len(recs), recs)
	}
	byID := map[string]LedgerRecord{}
	for _, r := range recs {
		byID[r.ID] = r
		if r.Schema != LedgerSchemaVersion || r.Engine != "mc" || r.Outcome != string(StateDone) {
			t.Errorf("record %+v: want schema %d, engine mc, outcome done", r, LedgerSchemaVersion)
		}
		if r.Time == "" {
			t.Errorf("record %s missing timestamp", r.ID)
		}
	}
	for _, sub := range []submitResponse{j1, j2, j3} {
		r, ok := byID[sub.ID]
		if !ok {
			t.Fatalf("job %s missing from ledger", sub.ID)
		}
		if r.ContentHash != sub.Hash {
			t.Errorf("job %s: ledger hash %s, want %s", sub.ID, r.ContentHash, sub.Hash)
		}
	}
	if d := byID[j3.ID].Dedup; d != "result-cache" {
		t.Errorf("cached job dedup = %q, want result-cache", d)
	}
	if d := byID[j1.ID].Dedup; d != "" {
		t.Errorf("executed job dedup = %q, want empty", d)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		r := byID[id]
		if r.TrialsDone != 6 || r.TrialsTotal != 6 || r.Attempts != 1 || r.Retries != 0 {
			t.Errorf("executed record %+v: want 6/6 trials, 1 attempt", r)
		}
		for _, stage := range []string{"admit", "queue-wait", "mc", "manifest"} {
			if _, ok := r.StageSeconds[stage]; !ok {
				t.Errorf("job %s: ledger missing stage %q (have %v)", id, stage, r.StageSeconds)
			}
		}
		if r.WallSeconds <= 0 {
			t.Errorf("job %s: wall_seconds = %v", id, r.WallSeconds)
		}
	}
	if got := counter(telemetry.ServeLedgerRecords); got != 3 {
		t.Errorf("ledger records counter = %d, want 3", got)
	}
	if got := counter(telemetry.ServeLedgerErrors); got != 0 {
		t.Errorf("ledger errors counter = %d, want 0", got)
	}
}

// TestLedgerTimelineManifestInvariance pins the observability-is-passive
// contract: the same spec solved with the ledger and timelines fully
// enabled and with the ledger disabled yields byte-identical manifests.
func TestLedgerTimelineManifestInvariance(t *testing.T) {
	var manifests []string
	for _, cfg := range []Config{{}, {ResultDir: t.TempDir()}} {
		func() {
			telemetry.SetDefault(telemetry.New())
			trace.SetDefault(trace.New(trace.Options{Ring: trace.NewRing(256), DisableSamples: true}))
			defer telemetry.SetDefault(nil)
			defer trace.SetDefault(nil)
			s := NewServer(cfg)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				s.Drain(ctx) //nolint:errcheck
			}()
			code, sub, _ := submit(t, ts, tinySpec)
			if code != http.StatusAccepted {
				t.Fatalf("submit code %d", code)
			}
			if st := waitTerminal(t, ts, sub.ID); st.State != StateDone {
				t.Fatalf("state %q error %q", st.State, st.Error)
			}
			rcode, body := getResult(t, ts, sub.ID)
			if rcode != http.StatusOK {
				t.Fatalf("result code %d", rcode)
			}
			manifests = append(manifests, string(body))
		}()
	}
	if manifests[0] != manifests[1] {
		t.Errorf("manifests differ with observability off vs on:\n--- off\n%s\n--- on\n%s", manifests[0], manifests[1])
	}
}

// TestLedgerPathConfig pins the path resolution: explicit LedgerPath wins,
// "-" disables the ledger even with a result dir.
func TestLedgerPathConfig(t *testing.T) {
	dir := t.TempDir()
	explicit := filepath.Join(dir, "custom.jsonl")
	telemetry.SetDefault(telemetry.New())
	defer telemetry.SetDefault(nil)
	defer trace.SetDefault(nil)
	drain := func(s *Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	}
	s := NewServer(Config{ResultDir: dir, LedgerPath: explicit})
	if s.ledger.Path() != explicit {
		t.Errorf("explicit ledger path = %q, want %q", s.ledger.Path(), explicit)
	}
	drain(s)
	s = NewServer(Config{ResultDir: dir, LedgerPath: "-"})
	if s.ledger != nil {
		t.Errorf(`LedgerPath "-" did not disable the ledger`)
	}
	drain(s)
	s = NewServer(Config{})
	if s.ledger != nil {
		t.Errorf("memory-only server grew a ledger")
	}
	drain(s)
	s = NewServer(Config{ResultDir: dir})
	if s.ledger.Path() != filepath.Join(dir, "ledger.jsonl") {
		t.Errorf("default ledger path = %q", s.ledger.Path())
	}
	drain(s)
}

// TestEventsStream: the SSE endpoint replays the job's cascade summaries
// from the trace ring and terminates with an end frame once the job is
// done.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, sub, _ := submit(t, ts, tinySpec)
	if st := waitTerminal(t, ts, sub.ID); st.State != StateDone {
		t.Fatalf("state %q, want done", st.State)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	trials, end := 0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		switch line := sc.Text(); line {
		case "event: trial":
			trials++
		case "event: end":
			end = true
		}
	}
	if !end {
		t.Errorf("stream ended without an end frame (scan err %v)", sc.Err())
	}
	if trials != 6 {
		t.Errorf("streamed %d trial frames, want 6", trials)
	}
}

// TestResultCachePersists: with a ResultDir, a second server instance
// answers an identical submission from the on-disk manifest without
// re-solving — dedup across restarts.
func TestResultCachePersists(t *testing.T) {
	dir := t.TempDir()

	telemetry.SetDefault(telemetry.New())
	trace.SetDefault(trace.New(trace.Options{Ring: trace.NewRing(256), DisableSamples: true}))
	s1 := NewServer(Config{ResultDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	_, sub, _ := submit(t, ts1, tinySpec)
	if st := waitTerminal(t, ts1, sub.ID); st.State != StateDone {
		t.Fatalf("first server: state %q", st.State)
	}
	_, first := getResult(t, ts1, sub.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Drain(ctx) //nolint:errcheck
	cancel()
	ts1.Close()

	// A fresh process would also have fresh globals; reinstall them.
	telemetry.SetDefault(telemetry.New())
	trace.SetDefault(trace.New(trace.Options{Ring: trace.NewRing(256), DisableSamples: true}))
	defer telemetry.SetDefault(nil)
	defer trace.SetDefault(nil)
	s2 := NewServer(Config{ResultDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Drain(ctx) //nolint:errcheck
	}()

	code, sub2, _ := submit(t, ts2, tinySpec)
	if code != http.StatusOK || sub2.Dedup != "result-cache" {
		t.Fatalf("second server submit: code %d resp %+v, want 200 result-cache", code, sub2)
	}
	_, second := getResult(t, ts2, sub2.ID)
	if string(first) != string(second) {
		t.Errorf("persisted manifest differs from the original")
	}
	if got := counter(telemetry.ServeSolves); got != 0 {
		t.Errorf("second server ran %d solves, want 0", got)
	}
}
