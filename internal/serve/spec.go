// Package serve turns the EM analysis engines into queryable infrastructure:
// an HTTP/JSON job API (submit a SPICE deck or synthetic-grid spec plus
// engine options, poll status, stream progress, fetch the result) in front
// of a bounded job queue with per-job worker budgets, deadlines, bounded
// retry and graceful drain.
//
// Completed results are content-addressed the way internal/core's stress
// cache is: sha256 over the canonicalized job spec (defaults applied), the
// engine selection and core.MaterialHash(). Identical submissions therefore
// cost one solve — a concurrent duplicate attaches to the in-flight job
// (singleflight), a later duplicate is served from the result cache — and
// the worker budget is deliberately excluded from the key, because mc's
// per-trial seed splitting makes results bit-identical at any budget.
package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"emvia/internal/core"
	"emvia/internal/mc"
)

// SpecSchemaVersion is the job-spec schema this server speaks. Payloads
// carrying a larger version are rejected at decode time (version skew), so a
// job written for a future schema never runs under stale semantics.
const SpecSchemaVersion = 1

// Admission bounds. They cap the work one job can demand, so a single
// malformed or hostile submission cannot occupy the executor for hours.
const (
	// MaxSpecBytes bounds the JSON body (decks included).
	MaxSpecBytes = 4 << 20
	// MaxGridStripes bounds NX and NY of a synthetic grid.
	MaxGridStripes = 256
	// MaxTrials bounds the Monte-Carlo trial count.
	MaxTrials = 100000
)

// GridSource is the synthetic-grid alternative to an inline deck: the
// generator parameters of pdn.Generate, defaulting to the PG1 preset.
type GridSource struct {
	// Name labels the grid; defaults to "PG1" (also selecting preset
	// dimensions when NX/NY are 0). "PG2" and "PG5" select the larger
	// presets.
	Name string `json:"name,omitempty"`
	// NX, NY are the stripe counts; 0 keeps the preset's.
	NX int `json:"nx,omitempty"`
	NY int `json:"ny,omitempty"`
	// PadPeriod is the pad spacing in stripes; 0 keeps the preset's.
	PadPeriod int `json:"pad_period,omitempty"`
	// Seed drives the load-distribution randomness; 0 selects 1.
	Seed int64 `json:"seed,omitempty"`
	// CalibrateIR rescales the loads so the pristine worst IR drop equals
	// this fraction of Vdd; 0 selects 0.065, negative disables calibration.
	CalibrateIR float64 `json:"calibrate_ir,omitempty"`
}

// ModelSpec is an analytic per-pattern via-array TTF model: a lognormal with
// the given median (years) and shape at a reference array current, rescaled
// 1/I² to the current each array actually carries. It replaces the FEA +
// characterization pipeline for service jobs, which must admit in bounded
// time; a precomputed viaarray.ModelSet can be expressed exactly in this
// form.
type ModelSpec struct {
	MedianYears    float64 `json:"median_years"`
	Sigma          float64 `json:"sigma"`
	RefCurrentAmps float64 `json:"ref_current_amps,omitempty"` // 0 = busiest-array current of this grid
	FailK          int     `json:"fail_k,omitempty"`           // 0 = 16
}

// JobSpec is the POST /v1/jobs payload.
type JobSpec struct {
	// SchemaVersion is the spec schema the client wrote; 0 means current.
	SchemaVersion int `json:"schema_version,omitempty"`
	// Engine selects the analysis backend: "mc", "steady" or "both"
	// (default "mc").
	Engine string `json:"engine,omitempty"`
	// Deck is an inline SPICE deck (IBM-benchmark dialect, node names
	// n<layer>_<x>_<y>). Exactly one of Deck and Grid must be set.
	Deck string `json:"deck,omitempty"`
	// Grid requests a synthetic grid instead of a deck.
	Grid *GridSource `json:"grid,omitempty"`
	// Vdd is the supply voltage; 0 selects 1.8.
	Vdd float64 `json:"vdd,omitempty"`
	// Criterion is the system failure criterion: "ir" (default) or "wl".
	Criterion string `json:"criterion,omitempty"`
	// IRFrac is the IR-drop threshold as a fraction of Vdd; 0 selects 0.10.
	IRFrac float64 `json:"ir_frac,omitempty"`
	// Trials is the Monte-Carlo trial count; 0 selects 100. Ignored by the
	// steady engine.
	Trials int `json:"trials,omitempty"`
	// Seed is the Monte-Carlo seed; 0 selects 2017.
	Seed int64 `json:"seed,omitempty"`
	// Models maps intersection patterns ("plus", "t", "l") to analytic TTF
	// models. Omitted patterns (or a nil map) use the built-in defaults.
	Models map[string]ModelSpec `json:"models,omitempty"`
	// TimeoutSeconds bounds the job's execution wall time. It is an
	// execution knob, not part of the result, so it is excluded from the
	// content hash. 0 selects the server default.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// DecodeJobSpec reads one JSON job spec strictly: unknown fields are
// rejected (a field from a future schema must not be silently dropped —
// that is the version-skew failure mode), trailing garbage is rejected, and
// the body is already expected to be length-capped by the HTTP layer.
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes+1))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("serve: decoding job spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after job spec")
	}
	if len(spec.Deck) > MaxSpecBytes {
		return nil, fmt.Errorf("serve: deck exceeds %d bytes", MaxSpecBytes)
	}
	return &spec, nil
}

// finite rejects NaN and ±Inf, which json.Decode cannot produce from
// literals but which defensive layers upstream (or a future binary codec)
// could hand us; every float the spec carries flows through here.
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("serve: %s must be finite, got %g", name, v)
	}
	return nil
}

// patternKeys are the accepted Models keys, in canonical order.
var patternKeys = []string{"plus", "t", "l"}

// Validate checks the spec without resolving defaults. A spec that passes
// Validate is admissible: bounded work, one grid source, finite numbers,
// known engine/criterion, current schema.
func (s *JobSpec) Validate() error {
	if s.SchemaVersion > SpecSchemaVersion {
		return fmt.Errorf("serve: job spec schema %d is newer than this server's %d", s.SchemaVersion, SpecSchemaVersion)
	}
	if s.SchemaVersion < 0 {
		return fmt.Errorf("serve: negative schema version %d", s.SchemaVersion)
	}
	if _, err := mc.ParseEngine(s.Engine); err != nil {
		return err
	}
	hasDeck := s.Deck != ""
	hasGrid := s.Grid != nil
	if hasDeck == hasGrid {
		return fmt.Errorf("serve: job spec needs exactly one of deck and grid")
	}
	if hasGrid {
		g := s.Grid
		if g.NX < 0 || g.NY < 0 || g.NX > MaxGridStripes || g.NY > MaxGridStripes {
			return fmt.Errorf("serve: grid dimensions %dx%d out of range (max %d stripes)", g.NX, g.NY, MaxGridStripes)
		}
		if (g.NX != 0 && g.NX < 2) || (g.NY != 0 && g.NY < 2) {
			return fmt.Errorf("serve: grid needs at least 2 stripes per axis, got %dx%d", g.NX, g.NY)
		}
		if g.PadPeriod < 0 {
			return fmt.Errorf("serve: negative pad period %d", g.PadPeriod)
		}
		if err := finite("grid.calibrate_ir", g.CalibrateIR); err != nil {
			return err
		}
		if g.CalibrateIR >= 1 {
			return fmt.Errorf("serve: grid.calibrate_ir must be below 1, got %g", g.CalibrateIR)
		}
		switch strings.ToUpper(g.Name) {
		case "", "PG1", "PG2", "PG5":
		default:
			if g.NX == 0 || g.NY == 0 {
				return fmt.Errorf("serve: custom grid %q needs explicit nx and ny", g.Name)
			}
		}
	}
	if err := finite("vdd", s.Vdd); err != nil {
		return err
	}
	if s.Vdd < 0 {
		return fmt.Errorf("serve: negative vdd %g", s.Vdd)
	}
	switch s.Criterion {
	case "", "ir", "wl":
	default:
		return fmt.Errorf("serve: unknown criterion %q (want ir or wl)", s.Criterion)
	}
	if err := finite("ir_frac", s.IRFrac); err != nil {
		return err
	}
	if s.IRFrac < 0 || s.IRFrac >= 1 {
		return fmt.Errorf("serve: ir_frac must be in [0,1), got %g", s.IRFrac)
	}
	if s.Trials < 0 || s.Trials > MaxTrials {
		return fmt.Errorf("serve: trials must be in [0,%d], got %d", MaxTrials, s.Trials)
	}
	for key, m := range s.Models {
		switch key {
		case "plus", "t", "l":
		default:
			return fmt.Errorf("serve: unknown model pattern %q (want plus, t or l)", key)
		}
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"median_years", m.MedianYears},
			{"sigma", m.Sigma},
			{"ref_current_amps", m.RefCurrentAmps},
		} {
			if err := finite("models."+key+"."+c.name, c.v); err != nil {
				return err
			}
		}
		if m.MedianYears <= 0 {
			return fmt.Errorf("serve: models.%s.median_years must be positive, got %g", key, m.MedianYears)
		}
		if m.Sigma <= 0 {
			return fmt.Errorf("serve: models.%s.sigma must be positive, got %g", key, m.Sigma)
		}
		if m.RefCurrentAmps < 0 {
			return fmt.Errorf("serve: models.%s.ref_current_amps must be ≥ 0, got %g", key, m.RefCurrentAmps)
		}
		if m.FailK < 0 {
			return fmt.Errorf("serve: models.%s.fail_k must be ≥ 0, got %d", key, m.FailK)
		}
	}
	if err := finite("timeout_seconds", s.TimeoutSeconds); err != nil {
		return err
	}
	if s.TimeoutSeconds < 0 {
		return fmt.Errorf("serve: negative timeout_seconds %g", s.TimeoutSeconds)
	}
	return nil
}

// Resolved returns a copy with every default applied — the canonical form
// the content hash and the result manifest embed, so "trials omitted" and
// "trials: 100" are the same job. TimeoutSeconds is zeroed: it shapes
// execution, never the result.
func (s *JobSpec) Resolved() *JobSpec {
	out := *s
	out.SchemaVersion = SpecSchemaVersion
	engine, _ := mc.ParseEngine(s.Engine)
	out.Engine = engine
	if out.Vdd == 0 {
		out.Vdd = 1.8
	}
	if out.Criterion == "" {
		out.Criterion = "ir"
	}
	if out.IRFrac == 0 {
		out.IRFrac = 0.10
	}
	if out.Engine == mc.EngineSteady {
		// The steady screen neither samples nor iterates: trial and seed
		// knobs are inert, so canonicalize them away.
		out.Trials = 0
		out.Seed = 0
		out.Models = nil
	} else {
		if out.Trials == 0 {
			out.Trials = 100
		}
		if out.Seed == 0 {
			out.Seed = 2017
		}
		models := make(map[string]ModelSpec, len(patternKeys))
		for _, key := range patternKeys {
			m, ok := s.Models[key]
			if !ok {
				m = defaultModelSpec(key)
			}
			if m.FailK == 0 {
				m.FailK = 16
			}
			models[key] = m
		}
		out.Models = models
	}
	if out.Grid != nil {
		g := *out.Grid
		if g.Name == "" {
			g.Name = "PG1"
		}
		if g.Seed == 0 {
			g.Seed = 1
		}
		if g.CalibrateIR == 0 {
			g.CalibrateIR = 0.065
		}
		out.Grid = &g
	}
	out.TimeoutSeconds = 0
	return &out
}

// defaultModelSpec supplies the built-in per-pattern models, medians
// reflecting the paper's stress ordering (L-shaped best, Plus worst) with
// the characterization's typical lognormal shape. RefCurrentAmps 0 means
// "the busiest array of this grid", resolved against the deck at run time.
func defaultModelSpec(key string) ModelSpec {
	med := 6.0
	switch key {
	case "t":
		med = 7.0
	case "l":
		med = 8.0
	}
	return ModelSpec{MedianYears: med, Sigma: 0.35}
}

// hashPayload is what the content hash covers: the resolved spec plus the
// physics fingerprint. Worker budgets, timeouts and queue positions are
// absent by construction — none of them can change a result bit.
type hashPayload struct {
	Spec         *JobSpec `json:"spec"`
	MaterialHash string   `json:"material_hash"`
}

// ContentHash returns the job's content address: sha256 (hex) over the
// canonical JSON of the resolved spec and core.MaterialHash(). Specs that
// resolve identically hash identically; a material-constant change reroutes
// every address, exactly like the stress cache's key versioning.
func (s *JobSpec) ContentHash() (string, error) {
	resolved := s.Resolved()
	buf, err := json.Marshal(hashPayload{Spec: resolved, MaterialHash: core.MaterialHash()})
	if err != nil {
		return "", fmt.Errorf("serve: hashing job spec: %w", err)
	}
	sum := sha256.Sum256(buf)
	return fmt.Sprintf("%x", sum), nil
}
