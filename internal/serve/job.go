package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"emvia/internal/trace"
)

// State is a job's lifecycle position.
type State string

// Job states. Terminal states are StateDone, StateFailed and
// StateDeadline; every terminal transition closes Job.done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateDeadline State = "deadline_exceeded"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateDeadline
}

// Job is one submitted analysis, resolved and content-addressed.
type Job struct {
	// ID is the server-assigned job identity ("j-<n>-<hash8>").
	ID string
	// Hash is the content address of the resolved spec.
	Hash string
	// Spec is the resolved spec (defaults applied).
	Spec *JobSpec
	// Timeout is the execution bound the runner gets.
	Timeout time.Duration
	// Timeline accumulates the job's stage spans (admit → queue-wait →
	// engine stages → manifest). May be nil; recording through it is
	// nil-safe.
	Timeline *trace.Timeline

	// done closes on the terminal transition; SSE streams and drain wait on
	// it.
	done chan struct{}

	mu          sync.Mutex
	state       State
	err         string
	attempts    int
	trialsDone  int64
	trialsTotal int64
	created     time.Time
	started     time.Time
	finished    time.Time
	manifest    []byte // canonical result manifest (StateDone)

	// Shard bookkeeping (sharded dispatch only): how many trial-range
	// shards the job split into, how many dispatches were re-issued after
	// a worker failure or timeout, and a monotone count of trials covered
	// by completed shards (progress for remote shards, whose trials never
	// tick this process's trace ring).
	shards        int
	shardReissues int
	shardTrials   int64
}

// newJob builds a queued job.
func newJob(id, hash string, spec *JobSpec, timeout time.Duration, tl *trace.Timeline) *Job {
	total := int64(spec.Trials)
	return &Job{
		ID:          id,
		Hash:        hash,
		Spec:        spec,
		Timeout:     timeout,
		Timeline:    tl,
		done:        make(chan struct{}),
		state:       StateQueued,
		trialsTotal: total,
		created:     time.Now(),
	}
}

// TraceLabel names the job's Monte-Carlo runs in the structured tracer —
// the key the SSE cascade stream filters the ring on.
func (j *Job) TraceLabel() string { return "job:" + j.ID }

// Status is a point-in-time copy of the mutable job fields.
type Status struct {
	ID            string
	Hash          string
	State         State
	Err           string
	Attempts      int
	TrialsDone    int64
	TrialsTotal   int64
	Shards        int
	ShardReissues int
	Created       time.Time
	Started       time.Time
	Finished      time.Time
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:            j.ID,
		Hash:          j.Hash,
		State:         j.state,
		Err:           j.err,
		Attempts:      j.attempts,
		TrialsDone:    j.trialsDone,
		TrialsTotal:   j.trialsTotal,
		Shards:        j.shards,
		ShardReissues: j.shardReissues,
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
	}
}

// noteShards records the job's shard count (once per execution attempt; a
// retried attempt re-records the same partition).
func (j *Job) noteShards(n int) {
	j.mu.Lock()
	j.shards = n
	j.mu.Unlock()
}

// noteShardReissue counts one shard dispatch re-issued after a worker
// failure or timeout.
func (j *Job) noteShardReissue() {
	j.mu.Lock()
	j.shardReissues++
	j.mu.Unlock()
}

// addShardTrials advances the shard-completed trial counter.
func (j *Job) addShardTrials(n int64) {
	j.mu.Lock()
	j.shardTrials += n
	j.mu.Unlock()
}

// shardTrialsDone reads the shard-completed trial counter.
func (j *Job) shardTrialsDone() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.shardTrials
}

// Manifest returns the canonical result bytes, nil unless StateDone.
func (j *Job) Manifest() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.manifest
}

// Done exposes the terminal-transition channel.
func (j *Job) Done() <-chan struct{} { return j.done }

// setRunning marks the start of an execution attempt.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.attempts++
	if j.started.IsZero() {
		j.started = time.Now()
	}
}

// setProgress updates the live trial counter (clamped to the total).
func (j *Job) setProgress(done int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if done < 0 {
		done = 0
	}
	if j.trialsTotal > 0 && done > j.trialsTotal {
		done = j.trialsTotal
	}
	j.trialsDone = done
}

// finish performs the terminal transition exactly once.
func (j *Job) finish(state State, manifest []byte, errMsg string) {
	j.mu.Lock()
	already := j.state.Terminal()
	if !already {
		j.state = state
		j.manifest = manifest
		j.err = errMsg
		j.finished = time.Now()
		if state == StateDone && j.trialsTotal > 0 {
			j.trialsDone = j.trialsTotal
		}
	}
	j.mu.Unlock()
	if !already {
		close(j.done)
	}
}

// completeFromCache marks a freshly created job done with a cached manifest
// — the dedup fast path, which never touches the queue.
func (j *Job) completeFromCache(manifest []byte) {
	j.finish(StateDone, manifest, "")
}

// store holds every job plus the two dedup indexes: the in-flight
// singleflight map (hash → live job) and the content-addressed result
// cache (hash → manifest bytes), optionally persisted to a directory.
type store struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[string]*Job   // queued/running job per hash
	results  map[string][]byte // completed manifests per hash
	partials map[string][]byte // encoded partial manifests per partialKey
	nextID   int
	dir      string // "" = memory only
}

func newStore(dir string) *store {
	return &store{
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		results:  make(map[string][]byte),
		partials: make(map[string][]byte),
		dir:      dir,
	}
}

// resultPath is the on-disk address of a manifest.
func (st *store) resultPath(hash string) string {
	return filepath.Join(st.dir, hash+".json")
}

// lookupResult consults the in-memory result cache, falling back to the
// persistent directory (so identical queries stay one solve across server
// restarts). Corrupt or unreadable files are treated as misses, mirroring
// the stress cache's corruption-is-a-miss policy.
func (st *store) lookupResult(hash string) ([]byte, bool) {
	st.mu.Lock()
	if buf, ok := st.results[hash]; ok {
		st.mu.Unlock()
		return buf, true
	}
	dir := st.dir
	st.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	buf, err := os.ReadFile(st.resultPath(hash))
	if err != nil || len(buf) == 0 {
		return nil, false
	}
	st.mu.Lock()
	st.results[hash] = buf
	st.mu.Unlock()
	return buf, true
}

// saveResult records a completed manifest in memory and, when configured,
// on disk (atomic write-then-rename, so a torn write can never be read
// back as a result).
func (st *store) saveResult(hash string, manifest []byte) error {
	st.mu.Lock()
	st.results[hash] = manifest
	dir := st.dir
	st.mu.Unlock()
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: result dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+hash+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: result temp: %w", err)
	}
	if _, err := tmp.Write(manifest); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: writing result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: closing result: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.resultPath(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: publishing result: %w", err)
	}
	return nil
}

// partialPathFor is the on-disk address of a partial manifest: the spec
// hash plus the trial range it covers.
func (st *store) partialPathFor(hash string, start, count int) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s.part-%d+%d.json", hash, start, count))
}

// lookupPartial consults the content-addressed partial cache — memory
// first, then the persistent directory. Corrupt or unreadable files are
// misses.
func (st *store) lookupPartial(hash string, start, count int) ([]byte, bool) {
	key := partialKey(hash, start, count)
	st.mu.Lock()
	if buf, ok := st.partials[key]; ok {
		st.mu.Unlock()
		return buf, true
	}
	dir := st.dir
	st.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	buf, err := os.ReadFile(st.partialPathFor(hash, start, count))
	if err != nil || len(buf) == 0 {
		return nil, false
	}
	st.mu.Lock()
	st.partials[key] = buf
	st.mu.Unlock()
	return buf, true
}

// savePartial records an encoded partial manifest in memory and, when
// configured, on disk (atomic write-then-rename like saveResult).
func (st *store) savePartial(hash string, start, count int, buf []byte) error {
	key := partialKey(hash, start, count)
	st.mu.Lock()
	st.partials[key] = buf
	dir := st.dir
	st.mu.Unlock()
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: partial dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+hash+".part.tmp*")
	if err != nil {
		return fmt.Errorf("serve: partial temp: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: writing partial: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: closing partial: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.partialPathFor(hash, start, count)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: publishing partial: %w", err)
	}
	return nil
}

// create registers a new job under the next ID.
func (st *store) create(hash string, spec *JobSpec, timeout time.Duration, tl *trace.Timeline) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	short := hash
	if len(short) > 8 {
		short = short[:8]
	}
	j := newJob(fmt.Sprintf("j-%d-%s", st.nextID, short), hash, spec, timeout, tl)
	st.jobs[j.ID] = j
	return j
}

// remove drops a job that lost the singleflight race (or never admitted)
// from the ID index.
func (st *store) remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.jobs, id)
}

// get returns a job by ID.
func (st *store) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// claimInflight installs job as the hash's in-flight execution unless one
// already exists, returning the incumbent and false on conflict — the
// singleflight admission step.
func (st *store) claimInflight(job *Job) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.inflight[job.Hash]; ok {
		return cur, false
	}
	st.inflight[job.Hash] = job
	return job, true
}

// releaseInflight clears the hash's in-flight slot if job still owns it.
func (st *store) releaseInflight(job *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.inflight[job.Hash]; ok && cur == job {
		delete(st.inflight, job.Hash)
	}
}
