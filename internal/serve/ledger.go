package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// LedgerSchemaVersion stamps every ledger record so future readers can
// evolve the format without guessing.
const LedgerSchemaVersion = 1

// LedgerRecord is one line of the run ledger: the terminal disposition of
// one job. Records are observational only — nothing reads them back into
// the execution path — so the ledger can be deleted or rotated at any time
// without affecting results.
type LedgerRecord struct {
	Schema int `json:"schema"`
	// Time is the terminal-transition instant, RFC3339Nano UTC.
	Time        string `json:"time"`
	ID          string `json:"id"`
	ContentHash string `json:"content_hash"`
	Engine      string `json:"engine"`
	// Outcome is the terminal state: done, failed or deadline_exceeded.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Dedup reports how a duplicate submission was answered
	// ("result-cache"); empty for an executed job. In-flight attaches never
	// produce a record — they have no job of their own.
	Dedup       string `json:"dedup,omitempty"`
	Attempts    int    `json:"attempts"`
	Retries     int    `json:"retries"`
	TrialsDone  int64  `json:"trials_done"`
	TrialsTotal int64  `json:"trials_total"`
	// QueueWaitSeconds and WallSeconds are admission-to-start and
	// admission-to-terminal wall clock. StageSeconds sums each recorded
	// timeline stage (a retried job accumulates multiple spans per stage).
	QueueWaitSeconds float64            `json:"queue_wait_seconds"`
	WallSeconds      float64            `json:"wall_seconds"`
	StageSeconds     map[string]float64 `json:"stage_seconds,omitempty"`
	// Shards, ShardsReissued and MergeSeconds describe sharded dispatch:
	// how many trial-range shards the job split into, how many dispatches
	// were re-issued after worker failures or timeouts, and the wall time
	// of the partial-manifest merge. All zero (and omitted) for unsharded
	// jobs.
	Shards         int     `json:"shards,omitempty"`
	ShardsReissued int     `json:"shards_reissued,omitempty"`
	MergeSeconds   float64 `json:"merge_seconds,omitempty"`
}

// Ledger appends job records to a JSONL file. A nil *Ledger is a valid
// no-op, so the server records unconditionally.
//
// Appends are rotation-safe: each record opens the file O_APPEND, writes one
// complete line and closes it, so an external rotation (rename + recreate,
// or plain deletion) between records loses nothing and never corrupts a
// line. The mutex serializes writers within the process; O_APPEND keeps
// single-line writes atomic with respect to other processes.
type Ledger struct {
	mu   sync.Mutex
	path string
}

// NewLedger returns a ledger appending to path ("" returns nil — no-op).
func NewLedger(path string) *Ledger {
	if path == "" {
		return nil
	}
	return &Ledger{path: path}
}

// Path returns the ledger file path ("" on nil).
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Append writes one record as a single JSONL line.
func (l *Ledger) Append(rec *LedgerRecord) error {
	if l == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: ledger encode: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if dir := filepath.Dir(l.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("serve: ledger dir: %w", err)
		}
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("serve: ledger open: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("serve: ledger write: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: ledger close: %w", err)
	}
	return nil
}

// ReadLedger parses a ledger file, skipping blank lines. A truncated or
// corrupt trailing line (a crash mid-write under pathological conditions)
// is returned as a count of skipped lines rather than an error, mirroring
// the result cache's corruption-is-a-miss policy.
func ReadLedger(path string) (records []LedgerRecord, skipped int, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	for _, line := range splitLines(buf) {
		if len(line) == 0 {
			continue
		}
		var rec LedgerRecord
		if json.Unmarshal(line, &rec) != nil {
			skipped++
			continue
		}
		records = append(records, rec)
	}
	return records, skipped, nil
}

func splitLines(buf []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range buf {
		if b == '\n' {
			out = append(out, buf[start:i])
			start = i + 1
		}
	}
	if start < len(buf) {
		out = append(out, buf[start:])
	}
	return out
}
