package serve

import (
	"context"
	"fmt"
	"math"
	"strings"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/mc"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/spice"
	"emvia/internal/stat"
	"emvia/internal/trace"
	"emvia/internal/viaarray"
)

// Transient marks an error as retryable: the executor re-attempts the job
// with backoff instead of failing it. Engine errors are deterministic (the
// same spec fails the same way), so the default runner never returns one;
// the classification exists for runners with genuinely transient failure
// modes — remote solver backends, cache filesystems — and for the retry
// tests.
type Transient struct{ Err error }

// Error implements error.
func (t *Transient) Error() string { return "transient: " + t.Err.Error() }

// Unwrap exposes the cause.
func (t *Transient) Unwrap() error { return t.Err }

// buildGrid realizes the spec's grid source: a synthetic generate+calibrate
// or an inline-deck parse. Both paths are deterministic functions of the
// spec.
func buildGrid(spec *JobSpec) (*pdn.Grid, error) {
	if spec.Grid != nil {
		src := spec.Grid
		var gs pdn.GridSpec
		switch strings.ToUpper(src.Name) {
		case "PG2":
			gs = pdn.PG2Spec()
		case "PG5":
			gs = pdn.PG5Spec()
		case "PG1":
			gs = pdn.PG1Spec()
		default:
			gs = pdn.PG1Spec()
			gs.Name = src.Name
		}
		if src.NX > 0 {
			gs.NX = src.NX
		}
		if src.NY > 0 {
			gs.NY = src.NY
		}
		if src.PadPeriod > 0 {
			gs.PadPeriod = src.PadPeriod
		}
		gs.Seed = src.Seed
		gs.Vdd = spec.Vdd
		g, err := pdn.Generate(gs)
		if err != nil {
			return nil, err
		}
		if src.CalibrateIR > 0 {
			if err := g.CalibrateLoad(src.CalibrateIR); err != nil {
				return nil, err
			}
		}
		return g, nil
	}
	gs := pdn.PG1Spec()
	gs.Vdd = spec.Vdd
	return pdn.LoadDeck(strings.NewReader(spec.Deck), gs)
}

// buildModels realizes the spec's analytic TTF models against the grid: a
// zero reference current means "the busiest array of this grid", resolved
// with one pristine solve (deterministic, so the content-hash contract
// holds).
func buildModels(spec *JobSpec, g *pdn.Grid) (map[cudd.Pattern]viaarray.TTFModel, error) {
	var busiest float64
	needBusiest := false
	for _, m := range spec.Models {
		if m.RefCurrentAmps == 0 {
			needBusiest = true
		}
	}
	if needBusiest {
		imax, _, err := g.MaxViaCurrent()
		if err != nil {
			return nil, fmt.Errorf("serve: resolving reference current: %w", err)
		}
		if imax <= 0 {
			return nil, fmt.Errorf("serve: grid carries no via current to reference models against")
		}
		busiest = imax
	}
	patterns := map[string]cudd.Pattern{"plus": cudd.Plus, "t": cudd.TShape, "l": cudd.LShape}
	out := make(map[cudd.Pattern]viaarray.TTFModel, len(spec.Models))
	for key, m := range spec.Models {
		ref := m.RefCurrentAmps
		if ref == 0 {
			ref = busiest
		}
		out[patterns[key]] = viaarray.TTFModel{
			Dist: stat.LogNormal{
				Mu:    math.Log(phys.YearsToSeconds(m.MedianYears)),
				Sigma: m.Sigma,
			},
			RefCurrent: ref,
			FailK:      m.FailK,
		}
	}
	return out, nil
}

// RunOptions parameterizes one Runner execution: the per-job Monte-Carlo
// worker budget, the trace-run label that keys the job's progress and SSE
// cascade stream, and — for distributed shard execution — the trial range
// this run covers. A zero TrialCount selects the spec's full trial range;
// a positive one runs global trials [TrialStart, TrialStart+TrialCount),
// bit-identical to the same slice of a full-range run.
type RunOptions struct {
	Workers    int
	Label      string
	TrialStart int
	TrialCount int
}

// runSpec executes one resolved job spec: the default Runner. The context
// bounds the Monte Carlo (grid build and screening are single solves).
func runSpec(ctx context.Context, spec *JobSpec, ro RunOptions) (*runOutput, error) {
	tl := trace.TimelineFrom(ctx)
	endResolve := tl.Stage("resolve")
	g, err := buildGrid(spec)
	if err != nil {
		endResolve()
		return nil, err
	}
	out := &runOutput{materialHash: core.MaterialHash(), solver: spice.DefaultSolver().String()}
	if spec.Engine == mc.EngineSteady {
		endResolve()
		screen, err := pdn.ScreenGridCtx(ctx, g, pdn.ScreenConfig{})
		if err != nil {
			return nil, err
		}
		out.screen = screenInfo(screen)
		return out, nil
	}
	models, err := buildModels(spec, g)
	endResolve()
	if err != nil {
		return nil, err
	}
	cfg := pdn.TTFConfig{Grid: g, Models: models}
	switch spec.Criterion {
	case "wl":
		cfg.Criterion = pdn.WeakestLink
	default:
		cfg.Criterion = pdn.IRDrop
		cfg.IRDropFrac = spec.IRFrac
	}
	trials := spec.Trials
	base := mc.Options{Workers: ro.Workers, TraceLabel: ro.Label, Engine: spec.Engine}
	if ro.TrialCount > 0 {
		if ro.TrialStart < 0 || ro.TrialStart+ro.TrialCount > spec.Trials {
			return nil, fmt.Errorf("serve: trial range [%d,%d) outside the spec's [0,%d)",
				ro.TrialStart, ro.TrialStart+ro.TrialCount, spec.Trials)
		}
		base.FirstTrial = ro.TrialStart
		trials = ro.TrialCount
	}
	if spec.Engine == mc.EngineBoth {
		res, screen, err := pdn.AnalyzeTTFScreenedCtx(ctx, cfg, trials, spec.Seed, pdn.ScreenConfig{}, base)
		if err != nil {
			return nil, err
		}
		out.mcResult, out.screen = res, screenInfo(screen)
	} else {
		base.Engine = mc.EngineMC
		res, err := pdn.AnalyzeTTFCtx(ctx, cfg, trials, spec.Seed, base)
		if err != nil {
			return nil, err
		}
		out.mcResult = res
	}
	return out, nil
}
