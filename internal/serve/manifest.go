package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"emvia/internal/mc"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/stat"
	"emvia/internal/trace"
)

// manifestSchemaVersion is bumped when the result-manifest layout changes
// meaning. It is part of the manifest, not of the content hash: the hash
// addresses the *question*, the manifest records the *answer*.
const manifestSchemaVersion = 1

// ResultManifest is the content-addressed record of one completed job. It
// is canonical by construction — no wall-clock timestamps, no hostnames, no
// worker counts, and a deterministic JSON encoding — so two executions of
// the same content hash produce byte-identical manifests. That is the
// dedup contract the determinism suite pins: a cached manifest is
// indistinguishable from a fresh solve.
type ResultManifest struct {
	SchemaVersion int `json:"schema_version"`
	// ContentHash echoes the job's content address.
	ContentHash string `json:"content_hash"`
	// MaterialHash fingerprints the physics (core.MaterialHash).
	MaterialHash string `json:"material_hash"`
	// Engine is the resolved analysis backend (mc, steady, both).
	Engine string `json:"engine"`
	// Solver is the linear-solver backend the run used.
	Solver string `json:"solver,omitempty"`
	// Spec is the resolved job spec (defaults applied).
	Spec *JobSpec `json:"spec"`
	// Screen summarizes the steady-state classification (engines steady and
	// both).
	Screen *trace.ScreenInfo `json:"screen,omitempty"`
	// Trials, FiniteTrials and the TTF fields describe the Monte-Carlo
	// outcome (engines mc and both). TTFSeconds lists every trial's system
	// TTF in trial order — the byte-identity payload — with non-finite
	// values spelled as strings per the trace JSONL convention.
	Trials       int   `json:"trials,omitempty"`
	FiniteTrials int   `json:"finite_trials,omitempty"`
	TTFSeconds   []any `json:"ttf_seconds,omitempty"`
	// PercentilesYears gives the headline TTF quantiles in years over the
	// finite trials, keyed "p0.3", "p25", "p50", "p75", "p99.7" (JSON maps
	// encode with sorted keys, so the bytes stay canonical).
	PercentilesYears map[string]float64 `json:"percentiles_years,omitempty"`
}

// jsonNumber keeps finite values numeric and spells non-finite ones as
// strings, matching the trace JSONL and monitor /status conventions.
func jsonNumber(v float64) any {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return v
}

// screenInfo digests a grid screen into the manifest form shared with the
// run-provenance manifests.
func screenInfo(s *pdn.GridScreen) *trace.ScreenInfo {
	if s == nil {
		return nil
	}
	return &trace.ScreenInfo{
		Vias:           s.Vias,
		MortalVias:     s.MortalVias,
		Segments:       s.Segments,
		MortalSegments: s.MortalSegments,
		SigmaCritViaPa: s.SigmaCritVia,
		SigmaTViaPa:    s.SigmaTVia,
	}
}

// buildManifest assembles the canonical manifest of one run output.
func buildManifest(hash string, resolved *JobSpec, out *runOutput) (*ResultManifest, error) {
	m := &ResultManifest{
		SchemaVersion: manifestSchemaVersion,
		ContentHash:   hash,
		MaterialHash:  out.materialHash,
		Engine:        resolved.Engine,
		Solver:        out.solver,
		Spec:          resolved,
		Screen:        out.screen,
	}
	if res := out.mcResult; res != nil {
		m.Trials = len(res.TTF)
		m.TTFSeconds = make([]any, len(res.TTF))
		for i, v := range res.TTF {
			m.TTFSeconds[i] = jsonNumber(v)
		}
		finite := res.FiniteTTF()
		m.FiniteTrials = len(finite)
		if len(finite) > 0 {
			ecdf, err := stat.NewECDF(finite)
			if err != nil {
				return nil, err
			}
			m.PercentilesYears = map[string]float64{
				"p0.3":  phys.SecondsToYears(ecdf.Percentile(0.003)),
				"p25":   phys.SecondsToYears(ecdf.Percentile(0.25)),
				"p50":   phys.SecondsToYears(ecdf.Percentile(0.5)),
				"p75":   phys.SecondsToYears(ecdf.Percentile(0.75)),
				"p99.7": phys.SecondsToYears(ecdf.Percentile(0.997)),
			}
		}
	}
	return m, nil
}

// Encode renders the manifest as canonical indented JSON (trailing newline
// included, matching the provenance-manifest convention).
func (m *ResultManifest) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: encoding result manifest: %w", err)
	}
	return append(buf, '\n'), nil
}

// runOutput is what one engine execution produces, pre-manifest. The screen
// is carried in its digested manifest form so a merged shard output and a
// fresh single-process run flow through buildManifest identically.
type runOutput struct {
	screen       *trace.ScreenInfo
	mcResult     *mc.Result
	solver       string
	materialHash string
}
