package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"emvia/internal/mc"
	"emvia/internal/trace"
)

// PartialManifestSchemaVersion stamps the partial-manifest wire format.
// Coordinator and workers must agree exactly: a version skew is a merge
// error, never a silent reinterpretation.
const PartialManifestSchemaVersion = 1

// MaxPartialBytes bounds a partial manifest on the wire (MaxTrials TTF
// entries fit with a wide margin).
const MaxPartialBytes = 8 << 20

// PartialManifest is the canonical result of one trial-range shard of a
// Monte-Carlo job: the resolved-spec content hash it answers, the global
// trial range [TrialStart, TrialStart+TrialCount) it covers, and the
// per-trial outcomes in trial order. Like the full ResultManifest it is
// canonical by construction — no timestamps, hosts or worker counts — so
// the same (hash, range) always yields byte-identical partials, which is
// what makes shard re-issue idempotent and the fleet cache content-
// addressable by spec hash + trial range.
type PartialManifest struct {
	SchemaVersion int    `json:"schema_version"`
	ContentHash   string `json:"content_hash"`
	MaterialHash  string `json:"material_hash"`
	Engine        string `json:"engine"`
	Solver        string `json:"solver,omitempty"`
	TrialStart    int    `json:"trial_start"`
	TrialCount    int    `json:"trial_count"`
	// TTFSeconds lists the shard's per-trial system TTFs in trial order,
	// entry i holding global trial TrialStart+i, non-finite values spelled
	// as strings per the manifest convention.
	TTFSeconds []any `json:"ttf_seconds"`
	// Screen is the steady-state classification of an -engine=both shard.
	// Every shard screens the same grid deterministically, so merge requires
	// all shards to agree on it.
	Screen *trace.ScreenInfo `json:"screen,omitempty"`
}

// partialKey is the content address of a partial: spec hash + trial range.
func partialKey(hash string, start, count int) string {
	return fmt.Sprintf("%s:%d+%d", hash, start, count)
}

// buildPartial assembles the canonical partial manifest of one shard run.
func buildPartial(hash string, spec *JobSpec, start int, out *runOutput) *PartialManifest {
	p := &PartialManifest{
		SchemaVersion: PartialManifestSchemaVersion,
		ContentHash:   hash,
		MaterialHash:  out.materialHash,
		Engine:        spec.Engine,
		Solver:        out.solver,
		TrialStart:    start,
		Screen:        out.screen,
	}
	if res := out.mcResult; res != nil {
		p.TrialCount = len(res.TTF)
		p.TTFSeconds = make([]any, len(res.TTF))
		for i, v := range res.TTF {
			p.TTFSeconds[i] = jsonNumber(v)
		}
	}
	return p
}

// Encode renders the partial as canonical indented JSON with a trailing
// newline, matching the result-manifest convention.
func (p *PartialManifest) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: encoding partial manifest: %w", err)
	}
	return append(buf, '\n'), nil
}

// DecodePartialManifest reads one partial manifest strictly: unknown
// fields and trailing garbage are rejected, and the reader is length-capped.
func DecodePartialManifest(r io.Reader) (*PartialManifest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxPartialBytes+1))
	dec.DisallowUnknownFields()
	var p PartialManifest
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("serve: decoding partial manifest: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after partial manifest")
	}
	return &p, nil
}

// ttfValue converts one TTFSeconds entry back to its float64. JSON decoding
// yields float64 for numbers and string for the non-finite spellings; any
// other shape is corruption.
func ttfValue(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case string:
		switch x {
		case "+Inf":
			return math.Inf(1), nil
		case "-Inf":
			return math.Inf(-1), nil
		case "NaN":
			return math.NaN(), nil
		}
	}
	return 0, fmt.Errorf("serve: invalid ttf_seconds entry %v (%T)", v, v)
}

// checkPartial validates one partial against the job it claims to answer.
func checkPartial(p *PartialManifest, hash string, resolved *JobSpec) error {
	switch {
	case p == nil:
		return fmt.Errorf("serve: nil partial manifest")
	case p.SchemaVersion != PartialManifestSchemaVersion:
		return fmt.Errorf("serve: partial manifest schema %d, want %d", p.SchemaVersion, PartialManifestSchemaVersion)
	case p.ContentHash != hash:
		return fmt.Errorf("serve: partial manifest answers spec %.12s, want %.12s", p.ContentHash, hash)
	case p.MaterialHash == "":
		return fmt.Errorf("serve: partial manifest carries no material hash")
	case p.Engine != resolved.Engine:
		return fmt.Errorf("serve: partial manifest ran engine %q, job wants %q", p.Engine, resolved.Engine)
	case p.TrialStart < 0:
		return fmt.Errorf("serve: partial manifest trial_start %d is negative", p.TrialStart)
	case p.TrialCount < 1:
		return fmt.Errorf("serve: partial manifest trial_count %d (want ≥ 1)", p.TrialCount)
	case p.TrialStart+p.TrialCount > resolved.Trials:
		return fmt.Errorf("serve: partial manifest range [%d,%d) exceeds the job's %d trials",
			p.TrialStart, p.TrialStart+p.TrialCount, resolved.Trials)
	case len(p.TTFSeconds) != p.TrialCount:
		return fmt.Errorf("serve: partial manifest has %d ttf entries for %d trials", len(p.TTFSeconds), p.TrialCount)
	}
	return nil
}

// mergePartials reconstructs the full-run output from shard partials. The
// merge is strict: every partial must answer the same (hash, material,
// engine, solver) question, agree on the steady screen, and the trial
// ranges must tile [0, trials) exactly — an overlap, gap, duplicate or
// corrupt entry is an error, never a silent drop. A successful merge is
// bit-identical to a single-process run: TTF floats round-trip exactly
// through the JSON encoding, and every derived manifest field (percentiles,
// finite counts) is recomputed from the merged trial vector.
func mergePartials(hash string, resolved *JobSpec, parts []*PartialManifest) (*runOutput, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("serve: merging zero partial manifests")
	}
	trials := resolved.Trials
	if trials < 1 {
		return nil, fmt.Errorf("serve: job spec has no trials to merge")
	}
	for _, p := range parts {
		if err := checkPartial(p, hash, resolved); err != nil {
			return nil, err
		}
	}
	ref := parts[0]
	for _, p := range parts[1:] {
		if p.MaterialHash != ref.MaterialHash {
			return nil, fmt.Errorf("serve: partial manifests disagree on material hash (%.12s vs %.12s)",
				p.MaterialHash, ref.MaterialHash)
		}
		if p.Solver != ref.Solver {
			return nil, fmt.Errorf("serve: partial manifests disagree on solver (%q vs %q)", p.Solver, ref.Solver)
		}
		if (p.Screen == nil) != (ref.Screen == nil) || (p.Screen != nil && *p.Screen != *ref.Screen) {
			return nil, fmt.Errorf("serve: partial manifests disagree on the steady screen")
		}
	}
	sorted := make([]*PartialManifest, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TrialStart != sorted[j].TrialStart {
			return sorted[i].TrialStart < sorted[j].TrialStart
		}
		return sorted[i].TrialCount < sorted[j].TrialCount
	})
	next := 0
	for _, p := range sorted {
		switch {
		case p.TrialStart < next:
			return nil, fmt.Errorf("serve: partial manifests overlap at trial %d (range [%d,%d))",
				p.TrialStart, p.TrialStart, p.TrialStart+p.TrialCount)
		case p.TrialStart > next:
			return nil, fmt.Errorf("serve: partial manifests leave trials [%d,%d) uncovered", next, p.TrialStart)
		}
		next = p.TrialStart + p.TrialCount
	}
	if next != trials {
		return nil, fmt.Errorf("serve: partial manifests cover %d of %d trials", next, trials)
	}
	ttf := make([]float64, trials)
	for _, p := range sorted {
		for i, raw := range p.TTFSeconds {
			v, err := ttfValue(raw)
			if err != nil {
				return nil, fmt.Errorf("serve: partial [%d,%d) trial %d: %w",
					p.TrialStart, p.TrialStart+p.TrialCount, p.TrialStart+i, err)
			}
			ttf[p.TrialStart+i] = v
		}
	}
	return &runOutput{
		mcResult:     &mc.Result{TTF: ttf},
		screen:       ref.Screen,
		solver:       ref.Solver,
		materialHash: ref.MaterialHash,
	}, nil
}
