// Package textplot renders the experiment harness's figures as ASCII plots:
// XY line charts for stress profiles and CDF curves for TTF distributions.
// It keeps cmd/paperfigs dependency-free while making the regenerated
// figures directly comparable, by shape, to the paper's plots.
package textplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is an ASCII XY chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)

	series []Series
}

// Add appends a curve; X and Y must have equal nonzero length.
func (p *Plot) Add(s Series) error {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Errorf("textplot: series %q has mismatched lengths %d/%d", s.Name, len(s.X), len(s.Y))
	}
	p.series = append(p.series, s)
	return nil
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart.
func (p *Plot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("textplot: nothing to plot")
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !finite(minX) || !finite(minY) {
		return fmt.Errorf("textplot: no finite data")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			r := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = m
			}
		}
	}

	if p.Title != "" {
		fmt.Fprintf(w, "%s\n", p.Title)
	}
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yTop, labelW)
		case height - 1:
			label = pad(yBot, labelW)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	xLeft := fmt.Sprintf("%.4g", minX)
	xRight := fmt.Sprintf("%.4g", maxX)
	gap := width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLeft, strings.Repeat(" ", gap), xRight)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), p.XLabel, p.YLabel)
	}
	for si, s := range p.series {
		fmt.Fprintf(w, "%s   %c %s\n", strings.Repeat(" ", labelW), markers[si%len(markers)], s.Name)
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// CDFSeries turns TTF samples (seconds) into a CDF curve in the given x
// units (e.g. phys.Year for years on the x axis).
func CDFSeries(name string, samples []float64, xUnit float64) Series {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	x := make([]float64, n)
	y := make([]float64, n)
	for i, v := range s {
		x[i] = v / xUnit
		y[i] = float64(i+1) / float64(n)
	}
	return Series{Name: name, X: x, Y: y}
}
