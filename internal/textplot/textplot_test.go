package textplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := &Plot{Title: "t", XLabel: "x", YLabel: "y", Width: 20, Height: 5}
	if err := p.Add(Series{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"t\n", "line", "*", "x: x", "y: y"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderErrors(t *testing.T) {
	p := &Plot{}
	if err := p.Render(&bytes.Buffer{}); err == nil {
		t.Error("rendered empty plot")
	}
	if err := p.Add(Series{Name: "bad", X: []float64{1}, Y: nil}); err == nil {
		t.Error("accepted mismatched series")
	}
	p2 := &Plot{}
	if err := p2.Add(Series{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}); err != nil {
		t.Fatal(err)
	}
	if err := p2.Render(&bytes.Buffer{}); err == nil {
		t.Error("rendered all-NaN data")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := &Plot{Width: 10, Height: 3}
	if err := p.Add(Series{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Render(&bytes.Buffer{}); err != nil {
		t.Errorf("constant series: %v", err)
	}
}

func TestMultipleSeriesDistinctMarkers(t *testing.T) {
	p := &Plot{Width: 30, Height: 8}
	_ = p.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	_ = p.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}})
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestCDFSeries(t *testing.T) {
	s := CDFSeries("cdf", []float64{3, 1, 2}, 1)
	if len(s.X) != 3 {
		t.Fatalf("len = %d", len(s.X))
	}
	wantX := []float64{1, 2, 3}
	wantY := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range wantX {
		if s.X[i] != wantX[i] || math.Abs(s.Y[i]-wantY[i]) > 1e-12 {
			t.Errorf("point %d = (%g, %g), want (%g, %g)", i, s.X[i], s.Y[i], wantX[i], wantY[i])
		}
	}
	// Unit scaling.
	s2 := CDFSeries("cdf", []float64{10}, 5)
	if s2.X[0] != 2 {
		t.Errorf("scaled X = %g, want 2", s2.X[0])
	}
}
