// Benchmarks regenerating (scaled-down versions of) every table and figure
// of the paper, plus ablation benchmarks for the design choices called out
// in DESIGN.md §5. Each benchmark exercises the same code path as the
// corresponding cmd/paperfigs experiment; key result metrics are attached
// with b.ReportMetric so shape regressions are visible in benchmark output.
package emvia_test

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"emvia/internal/baseline"
	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/emdist"
	"emvia/internal/fem"
	"emvia/internal/korhonen"
	"emvia/internal/mc"
	"emvia/internal/par"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/solver"
	"emvia/internal/sparse"
	"emvia/internal/stat"
	"emvia/internal/viaarray"
)

// benchAnalyzer returns a coarse-mesh analyzer sized for benchmarking.
func benchAnalyzer() *core.Analyzer {
	a := core.NewAnalyzer()
	a.Base.Margin = 1.0 * phys.Micron
	a.Base.SubstrateThickness = 0.8 * phys.Micron
	a.Base.StepOutside = 0.5 * phys.Micron
	a.Base.StepZBulk = 1.0 * phys.Micron
	return a
}

// benchGrid builds a small tuned grid once per benchmark.
func benchGrid(b *testing.B, nx int) *pdn.Grid {
	b.Helper()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = nx, nx
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Tune(0.065, 0.01); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable1Materials measures the elasticity-matrix path behind
// Table 1's property set (element stiffness integration for each material).
func BenchmarkTable1Materials(b *testing.B) {
	p := cudd.DefaultParams()
	p.ArrayN = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := cudd.Build(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1StressProfile regenerates Figure 1: FEA stress scans of a
// 1×1 via vs a 4×4 array.
func BenchmarkFig1StressProfile(b *testing.B) {
	a := benchAnalyzer()
	var gap float64
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 4} {
			p := a.Base
			p.ArrayN = n
			p.Pattern = cudd.Plus
			res, err := cudd.Characterize(p, a.FEA)
			if err != nil {
				b.Fatal(err)
			}
			if n == 4 {
				gap = (res.MaxPeak() - res.MinPeak()) / phys.MPa
			}
		}
	}
	b.ReportMetric(gap, "MPa-spread")
}

// BenchmarkFig6Patterns regenerates Figure 6: the Plus/T/L stress scans.
func BenchmarkFig6Patterns(b *testing.B) {
	a := benchAnalyzer()
	var plusPeak float64
	for i := 0; i < b.N; i++ {
		for _, pat := range cudd.Patterns() {
			p := a.Base
			p.ArrayN = 4
			p.Pattern = pat
			res, err := cudd.Characterize(p, a.FEA)
			if err != nil {
				b.Fatal(err)
			}
			if pat == cudd.Plus {
				plusPeak = res.MaxPeak() / phys.MPa
			}
		}
	}
	b.ReportMetric(plusPeak, "MPa-plus-peak")
}

// BenchmarkFig7ArraySize regenerates Figure 7: 8×8 vs 4×4 stress.
func BenchmarkFig7ArraySize(b *testing.B) {
	a := benchAnalyzer()
	var innerDelta float64
	for i := 0; i < b.N; i++ {
		var inner [2]float64
		for k, n := range []int{4, 8} {
			p := a.Base
			p.ArrayN = n
			p.Pattern = cudd.Plus
			res, err := cudd.Characterize(p, a.FEA)
			if err != nil {
				b.Fatal(err)
			}
			inner[k] = res.PeakSigmaT[n/2][n/2]
		}
		innerDelta = (inner[0] - inner[1]) / phys.MPa
	}
	b.ReportMetric(innerDelta, "MPa-inner-gain")
}

// BenchmarkFEAWorkers measures worker-count scaling of one 4×4-array FEA
// characterization (assembly + CG + stress recovery). The paper metric is
// bit-identical across sub-benchmarks by the deterministic-kernel design, so
// only the wall clock may move.
func BenchmarkFEAWorkers(b *testing.B) {
	a := benchAnalyzer()
	nmax := runtime.GOMAXPROCS(0)
	seen := make(map[int]bool)
	for _, w := range []int{1, 2, 4, nmax} {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			opt := a.FEA
			opt.Workers = w
			var peak float64
			for i := 0; i < b.N; i++ {
				p := a.Base
				p.ArrayN = 4
				p.Pattern = cudd.Plus
				res, err := cudd.Characterize(p, opt)
				if err != nil {
					b.Fatal(err)
				}
				peak = res.MaxPeak() / phys.MPa
			}
			b.ReportMetric(peak, "MPa-peak")
		})
	}
}

// BenchmarkStressCacheWarm measures StressFor against a warm persistent
// cache: every iteration uses a fresh analyzer (empty in-memory map), so the
// per-via stress matrix comes entirely from disk and no FEA runs.
func BenchmarkStressCacheWarm(b *testing.B) {
	dir := b.TempDir()
	warm := benchAnalyzer()
	if err := warm.EnableStressCache(dir); err != nil {
		b.Fatal(err)
	}
	ref, err := warm.StressFor(cudd.Plus, warm.Base.LayerPair, 4, warm.Base.WireWidth)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := benchAnalyzer()
		if err := a.EnableStressCache(dir); err != nil {
			b.Fatal(err)
		}
		s, err := a.StressFor(cudd.Plus, a.Base.LayerPair, 4, a.Base.WireWidth)
		if err != nil {
			b.Fatal(err)
		}
		if s[2][2] != ref[2][2] {
			b.Fatalf("disk round-trip changed sigma: %g != %g", s[2][2], ref[2][2])
		}
	}
}

// arrayChar runs a via-array characterization at benchmark scale.
func arrayChar(b *testing.B, a *core.Analyzer, pattern cudd.Pattern, n int, crit core.ArrayCriterion, trials int, seed int64) *core.ViaArrayCharacterization {
	b.Helper()
	c, err := a.CharacterizeViaArray(pattern, n, a.Base.WireWidth, 1e10, crit, trials, seed)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkFig8aViaArrayCDF regenerates Figure 8(a): per-criterion CDFs of a
// 4×4 Plus array.
func BenchmarkFig8aViaArrayCDF(b *testing.B) {
	a := benchAnalyzer()
	var firstMed float64
	for i := 0; i < b.N; i++ {
		c := arrayChar(b, a, cudd.Plus, 4, core.ArrayOpenCircuit(), 100, 1)
		e, err := stat.NewECDF(c.Result.CriterionSamples(1))
		if err != nil {
			b.Fatal(err)
		}
		firstMed = phys.SecondsToYears(e.Percentile(0.5))
	}
	b.ReportMetric(firstMed, "years-1st-via-median")
}

// BenchmarkFig8bPatternCDF regenerates Figure 8(b): pattern CDFs at n_F=8.
func BenchmarkFig8bPatternCDF(b *testing.B) {
	a := benchAnalyzer()
	var lGain float64
	for i := 0; i < b.N; i++ {
		plus := arrayChar(b, a, cudd.Plus, 4, core.ArrayResistance2x(), 100, 2)
		l := arrayChar(b, a, cudd.LShape, 4, core.ArrayResistance2x(), 100, 3)
		lGain = phys.SecondsToYears(l.Model.Dist.Median() - plus.Model.Dist.Median())
	}
	b.ReportMetric(lGain, "years-L-vs-Plus")
}

// BenchmarkFig9Redundancy regenerates Figure 9: the five configuration
// curves.
func BenchmarkFig9Redundancy(b *testing.B) {
	a := benchAnalyzer()
	var gain float64
	for i := 0; i < b.N; i++ {
		c1 := arrayChar(b, a, cudd.Plus, 1, core.ArrayOpenCircuit(), 100, 4)
		c8 := arrayChar(b, a, cudd.Plus, 8, core.ArrayResistance2x(), 100, 5)
		e1, err := stat.NewECDF(c1.Result.Samples)
		if err != nil {
			b.Fatal(err)
		}
		e8, err := stat.NewECDF(c8.Result.Samples)
		if err != nil {
			b.Fatal(err)
		}
		gain = phys.SecondsToYears(e8.Percentile(0.003) - e1.Percentile(0.003))
	}
	b.ReportMetric(gain, "years-8x8-vs-1x1-worstcase")
}

// BenchmarkFig10GridCDF regenerates Figure 10 at reduced scale: PG1-style
// grid, 4×4 arrays, the two extreme criterion combinations.
func BenchmarkFig10GridCDF(b *testing.B) {
	a := benchAnalyzer()
	g := benchGrid(b, 8)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		wl, err := a.AnalyzeGrid(core.GridAnalysis{
			Grid: g, ArrayN: 4, ArrayCriterion: core.ArrayWeakestLink(),
			SystemCriterion: pdn.WeakestLink, CharTrials: 100, GridTrials: 50, Seed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		ir, err := a.AnalyzeGrid(core.GridAnalysis{
			Grid: g, ArrayN: 4, ArrayCriterion: core.ArrayOpenCircuit(),
			SystemCriterion: pdn.IRDrop, IRDropFrac: 0.10, CharTrials: 100, GridTrials: 50, Seed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		spread = ir.WorstCaseYears() / wl.WorstCaseYears()
	}
	b.ReportMetric(spread, "x-realistic-vs-weakestlink")
}

// BenchmarkTable2GridTTF regenerates one Table 2 cell per benchmark grid
// size (PG1-like row, IR-drop system, open-circuit arrays).
func BenchmarkTable2GridTTF(b *testing.B) {
	a := benchAnalyzer()
	g := benchGrid(b, 10)
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		rep, err := a.AnalyzeGrid(core.GridAnalysis{
			Grid: g, ArrayN: 4, ArrayCriterion: core.ArrayOpenCircuit(),
			SystemCriterion: pdn.IRDrop, IRDropFrac: 0.10, CharTrials: 100, GridTrials: 50, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		worst = rep.WorstCaseYears()
	}
	b.ReportMetric(worst, "years-worstcase")
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationPreconditioner compares FEA solve time under the three
// preconditioners on the same 4×4 structure.
func BenchmarkAblationPreconditioner(b *testing.B) {
	for _, pc := range []string{"none", "jacobi", "ic0"} {
		b.Run(pc, func(b *testing.B) {
			a := benchAnalyzer()
			p := a.Base
			p.ArrayN = 4
			for i := 0; i < b.N; i++ {
				if _, err := cudd.Characterize(p, fem.SolveOptions{Precond: pc}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ablationConfig builds a 4×4 array config with FEA-like graded stress.
func ablationConfig(n, failK int) viaarray.Config {
	sigma := make([][]float64, n)
	for r := range sigma {
		sigma[r] = make([]float64, n)
		for c := range sigma[r] {
			edge := r == 0 || c == 0 || r == n-1 || c == n-1
			if edge {
				sigma[r][c] = 230e6
			} else {
				sigma[r][c] = 215e6
			}
		}
	}
	return viaarray.Config{
		N: n, SigmaT: sigma, EM: emdist.Default(),
		CurrentDensity: 1e10, ViaArea: 1e-12,
		RVia: 0.15 * float64(n*n), RSegBottom: 0.02, RSegTop: 0.02,
		FailK: failK,
	}
}

// BenchmarkAblationCrowding isolates the current-crowding model: corner feed
// (network solve) vs uniform feed.
func BenchmarkAblationCrowding(b *testing.B) {
	for _, mode := range []struct {
		name string
		feed viaarray.FeedMode
	}{{"network", viaarray.CornerFeed}, {"uniform", viaarray.UniformFeed}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := ablationConfig(4, 16)
			cfg.Feed = mode.feed
			var med float64
			for i := 0; i < b.N; i++ {
				res, err := viaarray.Characterize(cfg, 200, 8)
				if err != nil {
					b.Fatal(err)
				}
				med = phys.SecondsToYears(res.Model.Dist.Median())
			}
			b.ReportMetric(med, "years-median")
		})
	}
}

// BenchmarkAblationLumpedStress isolates the per-via stress table: graded
// FEA stress vs a single lumped value for all vias.
func BenchmarkAblationLumpedStress(b *testing.B) {
	for _, mode := range []string{"pervia", "lumped"} {
		b.Run(mode, func(b *testing.B) {
			cfg := ablationConfig(4, 16)
			if mode == "lumped" {
				// Lump at the array peak, the conservative prior-art choice.
				for r := range cfg.SigmaT {
					for c := range cfg.SigmaT[r] {
						cfg.SigmaT[r][c] = 230e6
					}
				}
			}
			var med float64
			for i := 0; i < b.N; i++ {
				res, err := viaarray.Characterize(cfg, 200, 9)
				if err != nil {
					b.Fatal(err)
				}
				med = phys.SecondsToYears(res.Model.Dist.Median())
			}
			b.ReportMetric(med, "years-median")
		})
	}
}

// BenchmarkAblationAging isolates damage-accumulation aging after current
// redistribution.
func BenchmarkAblationAging(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"aging", false}, {"frozen", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := ablationConfig(4, 16)
			cfg.DisableAging = mode.disable
			var med float64
			for i := 0; i < b.N; i++ {
				res, err := viaarray.Characterize(cfg, 200, 10)
				if err != nil {
					b.Fatal(err)
				}
				med = phys.SecondsToYears(res.Model.Dist.Median())
			}
			b.ReportMetric(med, "years-median")
		})
	}
}

// BenchmarkGridSolve measures the raw nodal-analysis solve across grid
// sizes, the inner loop of the grid Monte Carlo.
func BenchmarkGridSolve(b *testing.B) {
	// nx200 and nx400 (80k and 320k unknowns) cross the supernodal
	// threshold, so the auto backend exercises the blocked factorization;
	// bench_snapshot.sh runs them at a reduced -benchtime.
	for _, nx := range []int{10, 20, 40, 80, 200, 400} {
		b.Run(sizeName(nx), func(b *testing.B) {
			g := benchGrid(b, nx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.MaxViaCurrent(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(nx int) string {
	return fmt.Sprintf("nx%d", nx)
}

// benchLaplacian builds an nx×nx unit-edge mesh Laplacian (with a small
// diagonal leak making it SPD) — the matrix shape of the power-grid MNA
// systems, used to benchmark the sparse Cholesky kernel in isolation.
func benchLaplacian(nx int) *sparse.CSR {
	n := nx * nx
	tr := sparse.NewTriplet(n, n, 5*n)
	id := func(ix, iy int) int { return ix*nx + iy }
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < nx; iy++ {
			i := id(ix, iy)
			tr.Add(i, i, 1e-3)
			if ix+1 < nx {
				j := id(ix+1, iy)
				tr.Add(i, i, 1)
				tr.Add(j, j, 1)
				tr.Add(i, j, -1)
				tr.Add(j, i, -1)
			}
			if iy+1 < nx {
				j := id(ix, iy+1)
				tr.Add(i, i, 1)
				tr.Add(j, j, 1)
				tr.Add(i, j, -1)
				tr.Add(j, i, -1)
			}
		}
	}
	return tr.ToCSR()
}

// BenchmarkSparseCholeskyFactor measures the sparse direct kernel on a
// 64×64 mesh Laplacian (4096 unknowns, the nx40 power-grid scale): numeric
// refactorization over the fixed AMD-ordered pattern, the triangular solve,
// and one edge downdate + update round trip (the Monte-Carlo edit path).
func BenchmarkSparseCholeskyFactor(b *testing.B) {
	a := benchLaplacian(64)
	sp, err := solver.NewSparseCholeskyFromCSR(a)
	if err != nil {
		b.Fatal(err)
	}
	n, _ := a.Dims()
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1e-3 * float64(i%17)
	}
	b.Run("Refactor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sp.RefactorFromCSR(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sp.SolveInto(x, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Update", func(b *testing.B) {
		// One failure (downdate) and one repair (update) of an interior
		// mesh edge per iteration, leaving the factor unchanged net.
		fa, fb := 32*64+31, 32*64+32
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sp.DowndateEdge(fa, fb, 1); err != nil {
				b.Fatal(err)
			}
			sp.UpdateEdge(fa, fb, 1)
		}
	})
}

// BenchmarkSparseCholeskyFactorSupernodal measures the supernodal kernel on
// the same 4096-unknown mesh Laplacian as BenchmarkSparseCholeskyFactor:
// numeric refactorization at several worker counts (results are
// bit-identical at any width; extra workers only help on multi-core hosts)
// and the batched 16-RHS triangular solve against the equivalent loop of
// single solves it replaces in grouped Monte-Carlo trials.
func BenchmarkSparseCholeskyFactorSupernodal(b *testing.B) {
	a := benchLaplacian(64)
	n, _ := a.Dims()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Refactor_w%d", w), func(b *testing.B) {
			sp, err := solver.NewSupernodalCholeskyFromCSR(a, par.Shared(w))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sp.RefactorFromCSR(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	sp, err := solver.NewSupernodalCholeskyFromCSR(a, par.Shared(1))
	if err != nil {
		b.Fatal(err)
	}
	const nrhs = 16
	rhs := make([]float64, nrhs*n)
	x := make([]float64, nrhs*n)
	for i := range rhs {
		rhs[i] = 1e-3 * float64(i%17)
	}
	b.Run("SolveBatch16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sp.SolveBatchInto(x, rhs, nrhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SolveLoop16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < nrhs; v++ {
				if err := sp.SolveInto(x[v*n:(v+1)*n], rhs[v*n:(v+1)*n]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkWilkinson measures the lognormal-closure helper used in the TTF
// lognormality argument.
func BenchmarkWilkinson(b *testing.B) {
	terms := make([]stat.LogNormal, 16)
	for i := range terms {
		terms[i] = stat.LogNormal{Mu: float64(i) * 0.1, Sigma: 0.3}
	}
	var m float64
	for i := 0; i < b.N; i++ {
		ln, err := stat.WilkinsonSum(terms)
		if err != nil {
			b.Fatal(err)
		}
		m = ln.Mean()
	}
	if math.IsNaN(m) {
		b.Fatal("NaN mean")
	}
}

// BenchmarkAblationSpacingRule compares the paper's equal-area via geometry
// against design-rule-constrained spacing (the paper's stated future work):
// wider gaps change the inter-via stress relief.
func BenchmarkAblationSpacingRule(b *testing.B) {
	for _, mode := range []struct {
		name    string
		spacing float64
	}{{"equalarea", 0}, {"ruled", 0.3 * phys.Micron}} {
		b.Run(mode.name, func(b *testing.B) {
			a := benchAnalyzer()
			p := a.Base
			p.ArrayN = 4
			p.Pattern = cudd.Plus
			p.ViaSpacing = mode.spacing
			var spread float64
			for i := 0; i < b.N; i++ {
				res, err := cudd.Characterize(p, a.FEA)
				if err != nil {
					b.Fatal(err)
				}
				spread = (res.MaxPeak() - res.MinPeak()) / phys.MPa
			}
			b.ReportMetric(spread, "MPa-spread")
		})
	}
}

// BenchmarkBaselineBlack measures the traditional flow for comparison with
// BenchmarkTable2GridTTF: the analytic weakest-link Black evaluation is
// orders of magnitude cheaper — and stress-blind.
func BenchmarkBaselineBlack(b *testing.B) {
	g := benchGrid(b, 10)
	black := baseline.DefaultBlack()
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		v, err := baseline.WeakestLinkGridTTF(g, black, 1e-12, phys.CelsiusToKelvin(105), 0.5)
		if err != nil {
			b.Fatal(err)
		}
		med = phys.SecondsToYears(v)
	}
	b.ReportMetric(med, "years-median")
}

// BenchmarkKorhonenPDE measures the transient stress-evolution solve that
// validates equation (1).
func BenchmarkKorhonenPDE(b *testing.B) {
	l := korhonen.Line{Length: 200e-6, EM: emdist.Default(), J: 1e10}
	tn := l.NucleationTimeClosedForm(100e6)
	for i := 0; i < b.N; i++ {
		if _, err := l.Solve(2*tn, korhonen.SolveOptions{Nodes: 200, Steps: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridMCScreened measures the -engine=both payoff on the nx200
// Monte-Carlo path (40 000 via arrays, weakest-link system criterion — the
// sampling-bound regime where lifetime draws are the whole trial cost). The
// grid is tuned to a realistic 1 % nominal IR budget, where the steady
// screen classifies ~14 % of the arrays mortal; the screened run samples
// only those, so the pair exposes the end-to-end pruning speedup directly.
// Both sub-benchmarks run identical trial counts from the same seed, and
// the screened one asserts the zero-miss contract every iteration.
func BenchmarkGridMCScreened(b *testing.B) {
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 200, 200
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	const refViaAmps = 0.01
	if err := g.Tune(0.010, refViaAmps); err != nil {
		b.Fatal(err)
	}
	screen, err := pdn.ScreenGrid(g, pdn.ScreenConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if screen.MortalVias == 0 {
		b.Fatal("screen classified no via mortal")
	}
	mk := func(medYears float64) viaarray.TTFModel {
		return viaarray.TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(phys.YearsToSeconds(medYears)), Sigma: 0.35},
			RefCurrent: refViaAmps,
			FailK:      16,
		}
	}
	cfg := pdn.TTFConfig{
		Grid: g,
		Models: map[cudd.Pattern]viaarray.TTFModel{
			cudd.Plus:   mk(6),
			cudd.TShape: mk(7),
			cudd.LShape: mk(8),
		},
		Criterion: pdn.WeakestLink,
	}
	opt := mc.Options{Trials: 50, Seed: 9}

	b.Run("unscreened", func(b *testing.B) {
		sys, err := pdn.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mc.Run(sys, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("screened", func(b *testing.B) {
		sys, err := pdn.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		popt := opt
		popt.Engine = mc.EngineBoth
		popt.Candidates = screen.CandidateMask()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := mc.Run(sys, popt)
			if err != nil {
				b.Fatal(err)
			}
			if misses := res.MaskMisses(screen.ViaMortal); len(misses) != 0 {
				b.Fatalf("failures outside the mortal set: %v", misses)
			}
		}
		b.ReportMetric(100*screen.MortalViaFraction(), "%mortal")
	})
}

// BenchmarkGridMCSharded measures the distributed-sharding payoff on the
// nx200 Monte-Carlo phase: the job's 50-trial range split into 1/2/4
// contiguous shards run by concurrent local shard workers (mc
// Options.FirstTrial), exactly as serve's local executor pool dispatches
// them. shards=1 is the single-process baseline. Because trial t always
// seeds from trialSeed(seed, t) regardless of which shard runs it, every
// variant reassembles the identical TTF vector — asserted each iteration —
// so the sub-benchmarks differ only in wall clock. The speedup requires
// spare cores: on a single-CPU host the shard workers serialize and the
// variants measure sharding overhead instead.
func BenchmarkGridMCSharded(b *testing.B) {
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 200, 200
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	const refViaAmps = 0.01
	if err := g.Tune(0.010, refViaAmps); err != nil {
		b.Fatal(err)
	}
	mk := func(medYears float64) viaarray.TTFModel {
		return viaarray.TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(phys.YearsToSeconds(medYears)), Sigma: 0.35},
			RefCurrent: refViaAmps,
			FailK:      16,
		}
	}
	cfg := pdn.TTFConfig{
		Grid: g,
		Models: map[cudd.Pattern]viaarray.TTFModel{
			cudd.Plus:   mk(6),
			cudd.TShape: mk(7),
			cudd.LShape: mk(8),
		},
		Criterion: pdn.WeakestLink,
	}
	const trials = 50
	opt := mc.Options{Trials: trials, Seed: 9}

	// The single-process reference TTF vector every sharded variant must
	// reproduce bit for bit.
	refSys, err := pdn.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	refRes, err := mc.Run(refSys, opt)
	if err != nil {
		b.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// One engine per shard worker, built outside the timed region —
			// the fleet analogue is each worker process holding its own grid.
			systems := make([]*pdn.GridSystem, shards)
			for s := range systems {
				if systems[s], err = pdn.NewSystem(cfg); err != nil {
					b.Fatal(err)
				}
			}
			q, r := trials/shards, trials%shards
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ttf := make([]float64, trials)
				var wg sync.WaitGroup
				errs := make([]error, shards)
				start := 0
				for s := 0; s < shards; s++ {
					count := q
					if s < r {
						count++
					}
					wg.Add(1)
					go func(s, start, count int) {
						defer wg.Done()
						o := opt
						o.FirstTrial = start
						o.Trials = count
						res, err := mc.Run(systems[s], o)
						if err != nil {
							errs[s] = err
							return
						}
						copy(ttf[start:start+count], res.TTF)
					}(s, start, count)
					start += count
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				for t, v := range ttf {
					if v != refRes.TTF[t] {
						b.Fatalf("shards=%d trial %d: TTF %g, single-process %g", shards, t, v, refRes.TTF[t])
					}
				}
			}
		})
	}
}
