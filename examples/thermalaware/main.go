// Thermalaware runs the temperature-refined variant of the flow: instead of
// assuming every via array sits at the uniform worst-case 105 °C of the
// paper, the grid's own power dissipation is fed through a compact thermal
// network, each array gets its local temperature, and its characterized TTF
// is rescaled for both the Arrhenius diffusivity and the thermomechanical
// stress relaxation toward the stress-free point. Hot spots age faster;
// cool corners last longer.
package main

import (
	"fmt"
	"log"

	"emvia/internal/core"
	"emvia/internal/pdn"
	"emvia/internal/thermal"
)

func main() {
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 16, 16
	spec.PadPeriod = 4
	grid, err := pdn.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := grid.Tune(0.065, 0.01); err != nil {
		log.Fatal(err)
	}

	analyzer := core.NewAnalyzer()
	analysis := core.GridAnalysis{
		Grid:            grid,
		ArrayN:          4,
		ArrayCriterion:  core.ArrayOpenCircuit(),
		SystemCriterion: pdn.IRDrop,
		IRDropFrac:      0.10,
		CharTrials:      400,
		GridTrials:      300,
		Seed:            2017,
	}

	// Uniform worst-case baseline (the paper's assumption).
	uniform, err := analyzer.AnalyzeGrid(analysis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform 105 C assumption: median %.2f y, worst-case %.2f y\n",
		uniform.MedianYears(), uniform.WorstCaseYears())

	// Thermally-aware run: a weaker mobile-class heatsink so the die
	// develops a real gradient over the 85 C sink.
	tcfg := thermal.DefaultConfig(spec.NX, spec.NY, spec.Pitch)
	tcfg.AmbientC = 85
	tcfg.HeatsinkConductancePerArea = 1.2e4
	rep, err := analyzer.AnalyzeGridThermal(analysis, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thermal-aware:            median %.2f y, worst-case %.2f y\n",
		rep.Grid.MedianYears(), rep.Grid.WorstCaseYears())
	fmt.Printf("die temperature: mean %.1f C, max %.1f C\n",
		rep.Map.MeanTemp(), rep.Map.MaxTemp())

	// Where are the most derated (hottest) arrays?
	minScale, minIdx := 1e18, -1
	maxScale, maxIdx := -1.0, -1
	for k, s := range rep.Scale {
		if s < minScale {
			minScale, minIdx = s, k
		}
		if s > maxScale {
			maxScale, maxIdx = s, k
		}
	}
	hot := grid.Vias[minIdx]
	cool := grid.Vias[maxIdx]
	fmt.Printf("fastest-aging array: (%d,%d) %v at %.1f C (TTF x%.2f)\n",
		hot.IX, hot.IY, hot.Pattern, rep.ViaTempsC[minIdx], minScale)
	fmt.Printf("slowest-aging array: (%d,%d) %v at %.1f C (TTF x%.2f)\n",
		cool.IX, cool.IY, cool.Pattern, rep.ViaTempsC[maxIdx], maxScale)

	// Bootstrap error bar on the headline worst-case number.
	lo, hi, err := rep.Grid.PercentileCIYears(0.003, 0.95, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case TTF 95%% CI: [%.2f, %.2f] years\n", lo, hi)
}
