// Quickstart: the shortest path through the library — characterize one via
// array's thermomechanical stress with the built-in FEA, turn it into a TTF
// distribution with the EM nucleation model, and print the reliability
// numbers a designer would act on.
package main

import (
	"fmt"
	"log"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/phys"
)

func main() {
	// An Analyzer owns the technology: Cu DD geometry (32 nm-class
	// defaults), operating temperature, and calibrated EM constants.
	analyzer := core.NewAnalyzer()

	// Step 1 — thermomechanical stress. This runs a real 3-D thermoelastic
	// finite-element solve of the Cu dual-damascene structure: a 4×4 via
	// array joining two 2 µm power-grid wires in a Plus-shaped mesh
	// intersection, cooled from the stress-free temperature to 105 °C.
	sigma, err := analyzer.StressFor(cudd.Plus, analyzer.Base.LayerPair, 4, 2*phys.Micron)
	if err != nil {
		log.Fatalf("stress characterization: %v", err)
	}
	fmt.Println("Per-via peak thermomechanical stress sigma_T (MPa):")
	for _, row := range sigma {
		for _, v := range row {
			fmt.Printf(" %6.1f", v/phys.MPa)
		}
		fmt.Println()
	}

	// Step 2 — via-array reliability. Monte Carlo over the EM nucleation
	// model (Algorithm 1 of the paper): vias fail one by one, current
	// redistributes through the array's resistive network, and the array is
	// deemed failed when its resistance doubles (half the vias gone).
	char, err := analyzer.CharacterizeViaArray(
		cudd.Plus, 4, 2*phys.Micron,
		1e10, // A/m² total current density over the 1 µm² array
		core.ArrayResistance2x(),
		500,  // Monte-Carlo trials
		2017, // seed
	)
	if err != nil {
		log.Fatalf("via-array characterization: %v", err)
	}
	model := char.Model
	fmt.Printf("\n4x4 Plus-shaped array, R=2x failure criterion:\n")
	fmt.Printf("  median TTF      %6.2f years\n", phys.SecondsToYears(model.Dist.Median()))
	fmt.Printf("  0.3%%ile TTF     %6.2f years (worst case)\n", phys.SecondsToYears(model.Dist.Quantile(0.003)))
	fmt.Printf("  lognormal fit   mu=%.3f sigma=%.3f (ln seconds)\n", model.Dist.Mu, model.Dist.Sigma)

	// The model rescales to any operating current via TTF ∝ 1/I².
	halfCurrent := model.RefCurrent / 2
	fmt.Printf("  at half current %6.2f years median\n",
		phys.SecondsToYears(model.Dist.Median()*model.Scale(halfCurrent)))
}
