// Stressprofile reproduces the paper's opening observation (Fig 1): the
// thermomechanical stress under a single wide via differs structurally from
// the stress under a via array of the same total area — the array's inner
// vias are protected. It builds both Cu DD structures, runs the FEA, prints
// the stress scan across the via row, and quantifies the lifetime impact of
// the stress difference with the EM nucleation model.
package main

import (
	"fmt"
	"log"
	"math"

	"emvia/internal/cudd"
	"emvia/internal/emdist"
	"emvia/internal/fem"
	"emvia/internal/phys"
)

func main() {
	em := emdist.Default()

	for _, n := range []int{1, 4} {
		p := cudd.DefaultParams()
		p.ArrayN = n
		p.Pattern = cudd.Plus
		// Two elements across each via so the intra-via stress dip resolves.
		p.StepArray = 0.5 * math.Sqrt(p.ViaArea) / float64(n)
		res, err := cudd.Characterize(p, fem.SolveOptions{})
		if err != nil {
			log.Fatalf("characterizing %dx%d: %v", n, n, err)
		}

		fmt.Printf("==== %dx%d via array (total area 1 um^2, 2 um wire, Plus pattern) ====\n", n, n)
		row := 0
		if n > 1 {
			row = 1
		}
		xs, sh := res.RowScan(row)
		fmt.Println("scan through via row (x um, sigma_H MPa):")
		for i := range xs {
			fmt.Printf("  %7.3f %8.1f\n", xs[i]/phys.Micron, sh[i]/phys.MPa)
		}
		fmt.Printf("per-via peak sigma_T: min %.1f MPa, max %.1f MPa\n",
			res.MinPeak()/phys.MPa, res.MaxPeak()/phys.MPa)

		// The paper: "this stress difference translates to a lifetime
		// improvement of ~2 years for each inner via". Quantify with the
		// nucleation model at the reference current density.
		tBest := em.MedianTTF(res.MinPeak(), 1e10)
		tWorst := em.MedianTTF(res.MaxPeak(), 1e10)
		fmt.Printf("median single-via TTF: most-stressed %.2f y, least-stressed %.2f y (gain %.2f y)\n\n",
			phys.SecondsToYears(tWorst), phys.SecondsToYears(tBest),
			phys.SecondsToYears(tBest-tWorst))
	}
}
