// Gridlifetime runs the paper's full flow on a synthetic power grid: build a
// benchmark-style mesh, tune it to a realistic IR-drop margin, characterize
// the via arrays of all three intersection patterns, and Monte-Carlo the
// grid's EM lifetime under both the traditional weakest-link criterion and
// the 10 % IR-drop criterion. It also writes the generated grid as a SPICE
// deck so the experiment is inspectable with any circuit tools.
package main

import (
	"fmt"
	"log"
	"os"

	"emvia/internal/core"
	"emvia/internal/pdn"
	"emvia/internal/phys"
)

func main() {
	// A 16×16-stripe mesh: 256 via arrays, pads every 4th stripe.
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 16, 16
	spec.PadPeriod = 4
	grid, err := pdn.Generate(spec)
	if err != nil {
		log.Fatalf("generating grid: %v", err)
	}
	// Tune like the paper tunes the IBM benchmarks: nominal worst IR drop
	// at 6.5 % of Vdd, busiest via array at the characterization current.
	if err := grid.Tune(0.065, 0.01); err != nil {
		log.Fatalf("tuning grid: %v", err)
	}
	imax, ir, err := grid.MaxViaCurrent()
	if err != nil {
		log.Fatal(err)
	}
	counts := grid.PatternCounts()
	fmt.Printf("grid %s: %d nodes of mesh, %d via arrays (Plus %d, T %d, L %d)\n",
		spec.Name, spec.NX*spec.NY, len(grid.Vias), counts[0], counts[1], counts[2])
	fmt.Printf("tuned: worst nominal IR drop %.1f%% of Vdd, busiest array %.1f mA\n\n",
		ir*100, imax*1e3)

	// Persist the deck (drop-in compatible with the benchmark dialect).
	f, err := os.Create("grid.sp")
	if err != nil {
		log.Fatal(err)
	}
	if err := grid.Netlist.Write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote grid.sp")

	analyzer := core.NewAnalyzer()
	for _, arrayN := range []int{4, 8} {
		for _, c := range []struct {
			sys  pdn.Criterion
			arr  core.ArrayCriterion
			desc string
		}{
			{pdn.WeakestLink, core.ArrayWeakestLink(), "traditional (first via kills array, first array kills grid)"},
			{pdn.IRDrop, core.ArrayOpenCircuit(), "realistic (arrays die open, grid dies at 10% IR drop)"},
		} {
			report, err := analyzer.AnalyzeGrid(core.GridAnalysis{
				Grid:            grid,
				ArrayN:          arrayN,
				ArrayCriterion:  c.arr,
				SystemCriterion: c.sys,
				IRDropFrac:      0.10,
				CharTrials:      400,
				GridTrials:      300,
				Seed:            2017,
			})
			if err != nil {
				log.Fatalf("analysis (%dx%d, %s): %v", arrayN, arrayN, c.desc, err)
			}
			fmt.Printf("%dx%d arrays, %s:\n", arrayN, arrayN, c.desc)
			fmt.Printf("  worst-case (0.3%%ile) TTF %6.2f years\n", report.WorstCaseYears())
			fmt.Printf("  median TTF              %6.2f years\n", report.MedianYears())
			avg := 0
			for _, ev := range report.MC.Events {
				avg += len(ev)
			}
			fmt.Printf("  mean array failures before system failure: %.1f\n\n",
				float64(avg)/float64(len(report.MC.Events)))
		}
	}
	_ = phys.Year
}
