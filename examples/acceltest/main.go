// Acceltest quantifies the blind spot that motivates the paper (§1):
// foundries characterize EM at elevated temperature (~300 °C), where the
// interconnect is close to its stress-free state, so the thermomechanical
// stress σ_T that dominates void nucleation at operating conditions
// (~105 °C) is invisible to the test. Mapping accelerated lifetimes back
// with Black's acceleration factor therefore misestimates field lifetime.
//
// The experiment: simulate an accelerated test of a via with the full
// stress-aware nucleation model, fit a Black model to the "measured" data,
// extrapolate to use conditions, and compare with the stress-aware truth.
package main

import (
	"fmt"
	"math/rand"

	"emvia/internal/baseline"
	"emvia/internal/emdist"
	"emvia/internal/phys"
	"emvia/internal/stat"
)

func main() {
	const (
		tUse     = 105.0 // °C
		tTest    = 300.0 // °C
		tSF      = 250.0 // °C, stress-free temperature
		jUse     = 1e10  // A/m²
		jTest    = 3e10  // A/m², accelerated current
		sigmaUse = 230e6 // Pa, σ_T at operating conditions (FEA value)
	)
	em := emdist.Default()
	rng := rand.New(rand.NewSource(1))

	// σ_T seen by the test structure at 300 °C: linear in (T − T_sf), so it
	// flips compressive above the stress-free point.
	sigmaTest := emdist.SigmaTAtTemp(sigmaUse, tUse, tTest, tSF)
	fmt.Printf("thermomechanical stress: %+.0f MPa at %g °C, %+.0f MPa at %g °C test\n",
		sigmaUse/phys.MPa, tUse, sigmaTest/phys.MPa, tTest)

	// "Run" the accelerated test: sample failures from the full model at
	// test conditions.
	emTest := em.WithTemp(tTest)
	n := 2000
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := emTest.SampleTTF(rng, sigmaTest, jTest)
		if v > 0 {
			samples = append(samples, v)
		}
	}
	fit, err := stat.FitLogNormal(samples)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accelerated test at %g °C, j=%.0e: median failure %.2f hours\n",
		tTest, jTest, fit.Median()/3600)

	// Foundry-style extrapolation: Black's acceleration factor with the
	// same Ea and n=2, applied to the measured median.
	black := baseline.Black{N: 2, Ea: em.Ea, LogSigma: fit.Sigma, A: 1}
	af := black.AccelerationFactor(jTest, phys.CelsiusToKelvin(tTest), jUse, phys.CelsiusToKelvin(tUse))
	predicted := fit.Median() * af
	fmt.Printf("Black extrapolation to %g °C, j=%.0e: AF=%.3g → predicted median %.2f years\n",
		tUse, jUse, af, phys.SecondsToYears(predicted))

	// Ground truth: the stress-aware model at use conditions.
	truth := em.MedianTTF(sigmaUse, jUse)
	fmt.Printf("stress-aware truth at use conditions:   median %.2f years\n",
		phys.SecondsToYears(truth))

	ratio := predicted / truth
	fmt.Printf("\n=> the stress-blind extrapolation is %.1fx optimistic:\n", ratio)
	fmt.Println("   at 300 C the line is nearly stress-free (even compressive), so the")
	fmt.Println("   test sees the full critical stress sigma_C ~ 345 MPa, while at 105 C")
	fmt.Printf("   the residual tension leaves only sigma_C - sigma_T ~ %.0f MPa margin;\n",
		(345e6-sigmaUse)/phys.MPa)
	fmt.Println("   TTF ~ (sigma_C - sigma_T)^2 makes that the dominant error term —")
	fmt.Println("   exactly the effect the paper's flow corrects by modelling sigma_T.")
}
