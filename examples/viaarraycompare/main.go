// Viaarraycompare answers the designer's question the paper poses: given a
// fixed via budget (1 µm² of copper), is it better spent as one wide via, a
// 4×4 array, or an 8×8 array? It runs the full stress + redundancy Monte
// Carlo for each option under two failure criteria and prints a comparison
// table plus an ASCII CDF chart (the paper's Fig 9).
package main

import (
	"fmt"
	"log"
	"os"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/phys"
	"emvia/internal/stat"
	"emvia/internal/textplot"
)

func main() {
	analyzer := core.NewAnalyzer()
	const (
		j      = 1e10 // A/m² over the array
		trials = 500
	)

	type option struct {
		n    int
		crit core.ArrayCriterion
	}
	opts := []option{
		{1, core.ArrayOpenCircuit()},
		{4, core.ArrayResistance2x()},
		{4, core.ArrayOpenCircuit()},
		{8, core.ArrayResistance2x()},
		{8, core.ArrayOpenCircuit()},
	}

	plot := &textplot.Plot{
		Title:  "Via budget comparison: TTF CDFs (cf. paper Fig 9)",
		XLabel: "TTF (years)",
		YLabel: "cumulative probability",
	}
	fmt.Printf("%-16s %12s %12s %12s\n", "configuration", "0.3%ile (y)", "median (y)", "99.7%ile (y)")
	for i, o := range opts {
		char, err := analyzer.CharacterizeViaArray(cudd.Plus, o.n, 2*phys.Micron, j, o.crit, trials, 7+int64(i))
		if err != nil {
			log.Fatalf("characterizing %dx%d: %v", o.n, o.n, err)
		}
		e, err := stat.NewECDF(char.Result.Samples)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%dx%d %s", o.n, o.n, o.crit)
		fmt.Printf("%-16s %12.2f %12.2f %12.2f\n", label,
			phys.SecondsToYears(e.Percentile(0.003)),
			phys.SecondsToYears(e.Percentile(0.5)),
			phys.SecondsToYears(e.Percentile(0.997)))
		if err := plot.Add(textplot.CDFSeries(label, char.Result.Samples, phys.Year)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	if err := plot.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The worked ΔR/R example from the paper's §4: how much redundancy a
	// 4×4 array really buys, by equation (5).
	fmt.Println("\nEquation (5): resistance growth of a 16-via array as vias fail")
	for _, nf := range []int{1, 2, 4, 8, 12, 15} {
		fmt.Printf("  %2d failed: +%5.1f%%\n", nf, 100*float64(nf)/float64(16-nf))
	}
}
