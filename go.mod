module emvia

go 1.22
