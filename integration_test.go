// Integration tests exercising the full pipeline across packages: the
// paper's qualitative claims must hold end-to-end, from FEA through the
// two-level Monte Carlo, at test scale.
package emvia_test

import (
	"bytes"
	"math"
	"testing"

	"emvia/internal/baseline"
	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/emdist"
	"emvia/internal/korhonen"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/viaarray"
)

// testAnalyzer returns a coarse-mesh analyzer for integration tests.
func testAnalyzer() *core.Analyzer {
	a := core.NewAnalyzer()
	a.Base.Margin = 1.0 * phys.Micron
	a.Base.SubstrateThickness = 0.8 * phys.Micron
	a.Base.StepOutside = 0.5 * phys.Micron
	a.Base.StepZBulk = 1.0 * phys.Micron
	return a
}

func testGrid(t *testing.T, nx int) *pdn.Grid {
	t.Helper()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = nx, nx
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Tune(0.065, 0.01); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEndToEndFig9Shape: worst-case TTF ordering 1×1 < 4×4 < 8×8 (open
// circuit criterion) from real FEA stress through the array Monte Carlo.
func TestEndToEndFig9Shape(t *testing.T) {
	a := testAnalyzer()
	worst := map[int]float64{}
	for _, n := range []int{1, 4, 8} {
		c, err := a.CharacterizeViaArray(cudd.Plus, n, a.Base.WireWidth, 1e10, core.ArrayOpenCircuit(), 300, 11)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		worst[n] = c.Model.Dist.Quantile(0.003)
	}
	t.Logf("worst-case years: 1x1=%.2f 4x4=%.2f 8x8=%.2f",
		phys.SecondsToYears(worst[1]), phys.SecondsToYears(worst[4]), phys.SecondsToYears(worst[8]))
	if !(worst[1] < worst[4] && worst[4] < worst[8]) {
		t.Errorf("Fig 9 worst-case ordering violated: %v", worst)
	}
}

// TestEndToEndTable2Shape: for one grid, the four criterion combinations
// order exactly as in Table 2.
func TestEndToEndTable2Shape(t *testing.T) {
	a := testAnalyzer()
	g := testGrid(t, 8)
	worst := func(sys pdn.Criterion, arr core.ArrayCriterion) float64 {
		rep, err := a.AnalyzeGrid(core.GridAnalysis{
			Grid: g, ArrayN: 4, ArrayCriterion: arr, SystemCriterion: sys,
			IRDropFrac: 0.10, CharTrials: 200, GridTrials: 100, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%v/%v: %v", sys, arr, err)
		}
		return rep.WorstCaseYears()
	}
	wlWL := worst(pdn.WeakestLink, core.ArrayWeakestLink())
	wlInf := worst(pdn.WeakestLink, core.ArrayOpenCircuit())
	irWL := worst(pdn.IRDrop, core.ArrayWeakestLink())
	irInf := worst(pdn.IRDrop, core.ArrayOpenCircuit())
	t.Logf("worst-case years: WL/WL=%.2f WL/Rinf=%.2f IR/WL=%.2f IR/Rinf=%.2f", wlWL, wlInf, irWL, irInf)
	// Paper Table 2 ordering within a row: WL/WL < IR/WL and WL/Rinf <
	// IR/Rinf (system credit), WL/WL < WL/Rinf and IR/WL < IR/Rinf (array
	// credit), and IR/Rinf is the overall best.
	if !(wlWL < irWL && wlInf < irInf && wlWL < wlInf && irWL < irInf) {
		t.Error("Table 2 criterion ordering violated")
	}
	if !(irInf > wlWL && irInf >= irWL && irInf >= wlInf) {
		t.Error("IR-drop + open-circuit is not the most optimistic cell")
	}
}

// TestModelSetCLIRoundTrip: characterize → serialize → load → grid analysis
// equals the integrated path.
func TestModelSetCLIRoundTrip(t *testing.T) {
	a := testAnalyzer()
	g := testGrid(t, 8)
	models, err := a.ViaArrayModels(4, a.Base.WireWidth, 1e10, core.ArrayOpenCircuit(), 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	set := viaarray.ModelSet{ArrayN: 4, FailK: 16, Models: models}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := viaarray.LoadModelSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	analysis := core.GridAnalysis{
		Grid: g, ArrayN: 4, SystemCriterion: pdn.IRDrop, IRDropFrac: 0.10,
		GridTrials: 50, Seed: 21,
	}
	direct, err := a.AnalyzeGridWithModels(analysis, models)
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := a.AnalyzeGridWithModels(analysis, loaded.Models)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.MedianYears()-viaJSON.MedianYears()) > 1e-9 {
		t.Errorf("serialized models changed the analysis: %g vs %g",
			direct.MedianYears(), viaJSON.MedianYears())
	}
}

// TestBaselineVsStressAware: the stress-blind Black weakest-link flow and
// the stress-aware weakest-link flow see the same grid; both must be finite
// and the stress-aware one must respond to pattern stress while Black does
// not distinguish patterns at equal current.
func TestBaselineVsStressAware(t *testing.T) {
	g := testGrid(t, 8)
	b := baseline.DefaultBlack()
	med, err := baseline.WeakestLinkGridTTF(g, b, 1e-12, phys.CelsiusToKelvin(105), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med <= 0 || math.IsInf(med, 0) {
		t.Fatalf("baseline median = %g", med)
	}
	// The j_max screen passes the tuned grid at its design limit.
	screen, err := baseline.ScreenCurrentDensity(g, 1e-12, 1.1e10)
	if err != nil {
		t.Fatal(err)
	}
	if screen.Violations != 0 {
		t.Errorf("screen violations = %d on a tuned grid", screen.Violations)
	}
}

// TestKorhonenConsistentWithEmdist: the PDE substrate and the closed-form
// TTF model agree through the whole parameter chain.
func TestKorhonenConsistentWithEmdist(t *testing.T) {
	em := emdist.Default()
	l := korhonen.Line{Length: 500e-6, EM: em, J: 1e10}
	sc, err := em.SigmaCDist()
	if err != nil {
		t.Fatal(err)
	}
	crit := sc.Median() - 230e6 // effective threshold after σ_T
	closed := l.NucleationTimeClosedForm(crit)
	fromEmdist := em.NucleationTime(sc.Median(), 230e6, 1e10)
	if math.Abs(closed-fromEmdist)/fromEmdist > 1e-9 {
		t.Errorf("korhonen %g vs emdist %g", closed, fromEmdist)
	}
	years := phys.SecondsToYears(fromEmdist)
	if years < 1 || years > 50 {
		t.Errorf("reference nucleation time %g years implausible", years)
	}
}
