#!/bin/sh
# bench_snapshot.sh — run the paper-figure benchmarks and write a JSON
# snapshot of ns/op, B/op and allocs/op per benchmark.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The snapshot protocol is fixed so numbers recorded across commits — e.g.
# the baseline/current sections of BENCH_1.json and BENCH_2.json — are
# comparable: the grid benchmarks run at -benchtime=100x (their op is sub-ms),
# the large GridSolve tiers (nx200/nx400, ~20–80 ms/op) at -benchtime=10x,
# and the FEA benchmarks at -benchtime=10x (their op is ~0.1–1 s), all with
# -count=1 -benchmem. Parsing keys on the unit tokens, not field positions,
# because some benchmarks report extra custom metrics.
set -eu
out="${1:-BENCH_snapshot.json}"
cd "$(dirname "$0")/.."
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

grid_benches='BenchmarkFig10GridCDF|BenchmarkTable2GridTTF|BenchmarkSparseCholeskyFactor'
grid_small='BenchmarkGridSolve/^nx(10|20|40|80)$'
grid_large='BenchmarkGridSolve/^nx(200|400)$|BenchmarkGridMCScreened|BenchmarkGridMCSharded'
fea_benches='BenchmarkFig1StressProfile|BenchmarkFig6Patterns|BenchmarkFig7ArraySize|BenchmarkFEAWorkers|BenchmarkStressCacheWarm'

go test -run '^$' -bench "$grid_benches" \
    -benchmem -benchtime=100x -count=1 . | tee "$tmp"
go test -run '^$' -bench "$grid_small" \
    -benchmem -benchtime=100x -count=1 . | tee -a "$tmp"
go test -run '^$' -bench "$grid_large" \
    -benchmem -benchtime=10x -count=1 . | tee -a "$tmp"
go test -run '^$' -bench "$fea_benches" \
    -benchmem -benchtime=10x -count=1 . | tee -a "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "cpu": "%s",\n' "$(awk -F: '/^cpu:/ {sub(/^[ \t]+/, "", $2); print $2; exit}' "$tmp")"
    printf '  "num_cpu": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
    printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}"
    printf '  "protocol": "go test -run ^$ -bench <group> -benchmem -count=1 .; grid group (%s) and small GridSolve tiers (%s) at -benchtime=100x, large GridSolve tiers (%s) and FEA group (%s) at -benchtime=10x",\n' "$grid_benches" "$grid_small" "$grid_large" "$fea_benches"
    printf '  "benchmarks": {\n'
    awk '/^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^Benchmark/, "", name)
        gsub(/\//, "_", name)
        ns = ""; bytes = ""; allocs = ""
        for (i = 3; i <= NF; i++) {
            if ($i == "ns/op") ns = $(i-1)
            else if ($i == "B/op") bytes = $(i-1)
            else if ($i == "allocs/op") allocs = $(i-1)
        }
        lines[++n] = sprintf("    \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                             name, $2, ns, bytes, allocs)
    }
    END {
        for (i = 1; i <= n; i++)
            printf "%s%s\n", lines[i], (i < n ? "," : "")
    }' "$tmp"
    printf '  }\n'
    printf '}\n'
} > "$out"
echo "wrote $out"
