#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the emserve job service.
#
# Builds cmd/emserve with the race detector, boots it on an ephemeral port,
# submits one tiny synthetic-grid Monte-Carlo job over HTTP, polls it to
# completion, fetches and sanity-checks the content-addressed result
# manifest, scrapes /metrics and the per-job stage timeline, checks the run
# ledger and renders it through `emtrace ledger`, and finally drains the
# server with SIGTERM (the process must exit 0 on its own — that is the
# graceful-drain contract).
#
# Usage: sh scripts/serve_smoke.sh [artifact-dir]
set -eu

OUT=${1:-serve-smoke-artifacts}
mkdir -p "$OUT"

go build -race -o "$OUT/emserve" ./cmd/emserve
"$OUT/emserve" -addr 127.0.0.1:0 -job-workers 2 -resultdir "$OUT/results" \
    >"$OUT/emserve.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# The server logs its bound address ("listening on http://…"); wait for it.
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's|.*listening on http://||p' "$OUT/emserve.log" | head -n 1)
    [ -n "$ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "serve_smoke: emserve did not start" >&2
    cat "$OUT/emserve.log" >&2
    exit 1
fi

SPEC='{"engine":"mc","criterion":"wl","grid":{"name":"PG1","nx":6,"ny":6,"pad_period":3,"calibrate_ir":0.05},"trials":6,"seed":7}'
RESP=$(curl -sS -X POST --data "$SPEC" "http://$ADDR/v1/jobs")
echo "serve_smoke: submit -> $RESP"
ID=$(printf '%s' "$RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
if [ -z "$ID" ]; then
    echo "serve_smoke: no job id in submit response" >&2
    exit 1
fi

STATE=
i=0
while [ $i -lt 300 ]; do
    STATE=$(curl -sS "http://$ADDR/v1/jobs/$ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
    done | failed | deadline_exceeded) break ;;
    esac
    sleep 0.1
    i=$((i + 1))
done
if [ "$STATE" != done ]; then
    echo "serve_smoke: job ended in state '$STATE'" >&2
    cat "$OUT/emserve.log" >&2
    exit 1
fi

curl -sS "http://$ADDR/v1/jobs/$ID/result" >"$OUT/manifest.json"
grep -q '"content_hash"' "$OUT/manifest.json"
grep -q '"material_hash"' "$OUT/manifest.json"
grep -q '"percentiles_years"' "$OUT/manifest.json"

# Stage timeline: the mc pipeline must report its full span set.
curl -sS "http://$ADDR/v1/jobs/$ID/timeline" >"$OUT/timeline.json"
for STAGE in admit queue-wait resolve compile factorize mc manifest; do
    grep -q "\"stage\": *\"$STAGE\"" "$OUT/timeline.json" || {
        echo "serve_smoke: timeline missing stage '$STAGE'" >&2
        cat "$OUT/timeline.json" >&2
        exit 1
    }
done

# Prometheus exposition: scrape and grep-lint it (no promtool in CI).
# Every non-comment line must be "name{labels} value"; counters, stage
# histograms and the ring gauges must be present; no non-finite values.
curl -sS "http://$ADDR/metrics" >"$OUT/metrics.prom"
grep -q '^emvia_serve_jobs_submitted_total 1$' "$OUT/metrics.prom"
grep -q '^emvia_serve_stage_seconds_bucket{stage="mc",le="+Inf"} 1$' "$OUT/metrics.prom"
grep -q '^emvia_trace_ring_capacity ' "$OUT/metrics.prom"
grep -q '^# TYPE emvia_serve_stage_seconds histogram$' "$OUT/metrics.prom"
if grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9eE.+-]*)$' "$OUT/metrics.prom"; then
    echo "serve_smoke: malformed exposition line(s) above" >&2
    exit 1
fi
if grep -E ' (NaN|[+-]?Inf)$' "$OUT/metrics.prom"; then
    echo "serve_smoke: non-finite value leaked into /metrics" >&2
    exit 1
fi

# Graceful drain: SIGTERM, then the process must exit 0 on its own.
kill -TERM "$PID"
wait "$PID"
trap - EXIT

# Run ledger: the drained server must have recorded the job, and
# `emtrace ledger` must render a report over it.
LEDGER="$OUT/results/ledger.jsonl"
if [ ! -s "$LEDGER" ]; then
    echo "serve_smoke: run ledger missing or empty at $LEDGER" >&2
    exit 1
fi
grep -q '"outcome":"done"' "$LEDGER"
go build -o "$OUT/emtrace" ./cmd/emtrace
"$OUT/emtrace" ledger "$LEDGER" >"$OUT/ledger-report.txt"
grep -q 'run ledger: 1 records' "$OUT/ledger-report.txt"
grep -q 'stage breakdown' "$OUT/ledger-report.txt"

echo "serve_smoke: OK ($(wc -c <"$OUT/manifest.json") byte manifest in $OUT/manifest.json)"
