#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the emserve job service.
#
# Builds cmd/emserve with the race detector, boots it on an ephemeral port,
# submits one tiny synthetic-grid Monte-Carlo job over HTTP, polls it to
# completion, fetches and sanity-checks the content-addressed result
# manifest, and finally drains the server with SIGTERM (the process must
# exit 0 on its own — that is the graceful-drain contract).
#
# Usage: sh scripts/serve_smoke.sh [artifact-dir]
set -eu

OUT=${1:-serve-smoke-artifacts}
mkdir -p "$OUT"

go build -race -o "$OUT/emserve" ./cmd/emserve
"$OUT/emserve" -addr 127.0.0.1:0 -job-workers 2 -resultdir "$OUT/results" \
    >"$OUT/emserve.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# The server logs its bound address ("listening on http://…"); wait for it.
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's|.*listening on http://||p' "$OUT/emserve.log" | head -n 1)
    [ -n "$ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "serve_smoke: emserve did not start" >&2
    cat "$OUT/emserve.log" >&2
    exit 1
fi

SPEC='{"engine":"mc","criterion":"wl","grid":{"name":"PG1","nx":6,"ny":6,"pad_period":3,"calibrate_ir":0.05},"trials":6,"seed":7}'
RESP=$(curl -sS -X POST --data "$SPEC" "http://$ADDR/v1/jobs")
echo "serve_smoke: submit -> $RESP"
ID=$(printf '%s' "$RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
if [ -z "$ID" ]; then
    echo "serve_smoke: no job id in submit response" >&2
    exit 1
fi

STATE=
i=0
while [ $i -lt 300 ]; do
    STATE=$(curl -sS "http://$ADDR/v1/jobs/$ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
    done | failed | deadline_exceeded) break ;;
    esac
    sleep 0.1
    i=$((i + 1))
done
if [ "$STATE" != done ]; then
    echo "serve_smoke: job ended in state '$STATE'" >&2
    cat "$OUT/emserve.log" >&2
    exit 1
fi

curl -sS "http://$ADDR/v1/jobs/$ID/result" >"$OUT/manifest.json"
grep -q '"content_hash"' "$OUT/manifest.json"
grep -q '"material_hash"' "$OUT/manifest.json"
grep -q '"percentiles_years"' "$OUT/manifest.json"

# Graceful drain: SIGTERM, then the process must exit 0 on its own.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "serve_smoke: OK ($(wc -c <"$OUT/manifest.json") byte manifest in $OUT/manifest.json)"
