#!/bin/sh
# shard_smoke.sh — end-to-end smoke test of distributed trial sharding.
#
# Builds cmd/emserve with the race detector, boots two worker processes and
# a coordinator (all on ephemeral ports), runs one job single-process on a
# worker and the same job sharded 4 ways across both workers through the
# coordinator, and asserts the two result manifests are byte-identical —
# the bit-identity contract of the partial-manifest merge. Also checks the
# coordinator's ledger records the shard columns and that `emtrace ledger`
# renders the sharding summary, then SIGTERM-drains all three processes
# (each must exit 0 on its own — the graceful-drain contract).
#
# Usage: sh scripts/shard_smoke.sh [artifact-dir]
set -eu

OUT=${1:-shard-smoke-artifacts}
mkdir -p "$OUT"

go build -race -o "$OUT/emserve" ./cmd/emserve

# boot <name> <extra flags...>: starts an emserve on an ephemeral port,
# waits for its bound address and echoes it.
boot() {
    NAME=$1
    shift
    "$OUT/emserve" -addr 127.0.0.1:0 "$@" >"$OUT/$NAME.log" 2>&1 &
    eval "${NAME}_PID=$!"
    ADDR=
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's|.*listening on http://||p' "$OUT/$NAME.log" | head -n 1)
        [ -n "$ADDR" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$ADDR" ]; then
        echo "shard_smoke: $NAME did not start" >&2
        cat "$OUT/$NAME.log" >&2
        exit 1
    fi
    eval "${NAME}_ADDR=$ADDR"
}

boot w1 -job-workers 2
boot w2 -job-workers 2
# shellcheck disable=SC2154 # set via eval in boot
boot coord -shards 4 -workers "$w1_ADDR,$w2_ADDR" -resultdir "$OUT/results"
trap 'kill "$w1_PID" "$w2_PID" "$coord_PID" 2>/dev/null || true' EXIT

SPEC='{"engine":"mc","criterion":"wl","grid":{"name":"PG1","nx":8,"ny":8,"pad_period":3,"calibrate_ir":0.05},"trials":16,"seed":11}'

# submit_and_fetch <addr> <outfile>: one job through one server, manifest
# out, job id left in $JOB_ID.
submit_and_fetch() {
    ADDR=$1
    MANIFEST=$2
    RESP=$(curl -sS -X POST --data "$SPEC" "http://$ADDR/v1/jobs")
    ID=$(printf '%s' "$RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    JOB_ID=$ID
    if [ -z "$ID" ]; then
        echo "shard_smoke: no job id in submit response: $RESP" >&2
        exit 1
    fi
    STATE=
    i=0
    while [ $i -lt 300 ]; do
        STATE=$(curl -sS "http://$ADDR/v1/jobs/$ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        case "$STATE" in
        done | failed | deadline_exceeded) break ;;
        esac
        sleep 0.1
        i=$((i + 1))
    done
    if [ "$STATE" != done ]; then
        echo "shard_smoke: job on $ADDR ended in state '$STATE'" >&2
        cat "$OUT"/*.log >&2
        exit 1
    fi
    curl -sS "http://$ADDR/v1/jobs/$ID/result" >"$MANIFEST"
}

# The byte-identity contract: single-process on a worker vs sharded 4 ways
# across both workers through the coordinator.
submit_and_fetch "$w1_ADDR" "$OUT/manifest-single.json"
submit_and_fetch "$coord_ADDR" "$OUT/manifest-sharded.json"
if ! cmp -s "$OUT/manifest-single.json" "$OUT/manifest-sharded.json"; then
    echo "shard_smoke: sharded manifest differs from single-process manifest" >&2
    diff "$OUT/manifest-single.json" "$OUT/manifest-sharded.json" >&2 || true
    exit 1
fi
grep -q '"percentiles_years"' "$OUT/manifest-sharded.json"

# The coordinator's shard telemetry must show remote dispatches.
curl -sS "http://$coord_ADDR/metrics" >"$OUT/metrics.prom"
grep -q '^emvia_serve_shard_dispatched_total 4$' "$OUT/metrics.prom"
grep -q '^emvia_serve_shard_remote_runs_total 4$' "$OUT/metrics.prom"

# The shard timeline stages must be present on the coordinator's job.
curl -sS "http://$coord_ADDR/v1/jobs/$JOB_ID/timeline" >"$OUT/timeline.json"
for STAGE in dispatch shard-wait merge; do
    grep -q "\"stage\": *\"$STAGE\"" "$OUT/timeline.json" || {
        echo "shard_smoke: coordinator timeline missing stage '$STAGE'" >&2
        cat "$OUT/timeline.json" >&2
        exit 1
    }
done

# Graceful drain, coordinator first, then the workers.
kill -TERM "$coord_PID" && wait "$coord_PID"
kill -TERM "$w1_PID" && wait "$w1_PID"
kill -TERM "$w2_PID" && wait "$w2_PID"
trap - EXIT

# The coordinator's ledger must carry the shard columns, and emtrace must
# render the sharding summary from them.
LEDGER="$OUT/results/ledger.jsonl"
if [ ! -s "$LEDGER" ]; then
    echo "shard_smoke: coordinator ledger missing or empty at $LEDGER" >&2
    exit 1
fi
grep -q '"shards":4' "$LEDGER"
grep -q '"merge_seconds":' "$LEDGER"
go build -o "$OUT/emtrace" ./cmd/emtrace
"$OUT/emtrace" ledger "$LEDGER" >"$OUT/ledger-report.txt"
grep -q 'sharding: 1 jobs sharded, 4 shards/job' "$OUT/ledger-report.txt"

echo "shard_smoke: OK (merged manifest byte-identical to single-process, $(wc -c <"$OUT/manifest-sharded.json") bytes)"
