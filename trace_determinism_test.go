// Trace determinism matrix: the structured-event layer must produce a JSONL
// stream that is byte-identical between the serial Monte-Carlo engine and
// every parallel worker count. Cascade events carry only simulated time and
// component identity, workers write into per-trial buffer slots, and the
// merge walks trials in index order — so any wall-clock or scheduling leak
// into the event stream fails this test loudly.
package emvia_test

import (
	"bytes"
	"math"
	"strconv"
	"testing"

	"emvia/internal/cudd"
	"emvia/internal/mc"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/stat"
	"emvia/internal/trace"
	"emvia/internal/viaarray"
)

// captureTraceJSONL installs a fresh tracer around fn and returns the JSONL
// bytes it emitted. The default tracer is always uninstalled before return so
// a failing fn cannot leak tracing into other tests.
func captureTraceJSONL(t *testing.T, fn func() error) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(trace.Options{Sinks: []trace.Sink{trace.NewJSONLSink(&buf)}})
	trace.SetDefault(tr)
	defer trace.SetDefault(nil)
	err := fn()
	trace.SetDefault(nil)
	if cerr := tr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminismViaArrayMC asserts the merged event stream of
// mc.RunParallel over a via array equals the serial stream byte for byte at
// every worker count.
func TestTraceDeterminismViaArrayMC(t *testing.T) {
	cfg := ablationConfig(4, 16)
	opt := mc.Options{Trials: 40, Seed: 42, RunToCompletion: true}

	ref := captureTraceJSONL(t, func() error {
		sys, err := viaarray.New(cfg)
		if err != nil {
			return err
		}
		_, err = mc.Run(sys, opt)
		return err
	})
	if len(ref) == 0 {
		t.Fatal("serial run emitted no trace events")
	}
	if !bytes.Contains(ref, []byte(`"via(`)) {
		t.Fatalf("trace lacks via component labels:\n%.400s", ref)
	}

	for _, w := range mcWorkerCounts {
		popt := opt
		popt.Workers = w
		got := captureTraceJSONL(t, func() error {
			_, err := mc.RunParallel(func() (mc.System, error) { return viaarray.New(cfg) }, popt)
			return err
		})
		if !bytes.Equal(got, ref) {
			t.Fatalf("Workers=%d: trace differs from serial run (%d vs %d bytes)\nfirst divergence: %s",
				w, len(got), len(ref), firstDivergence(got, ref))
		}
	}
}

// TestTraceDeterminismGridMC is the same matrix over the power-grid system,
// whose trials trigger SPICE re-solves and spec-violation events.
func TestTraceDeterminismGridMC(t *testing.T) {
	if testing.Short() {
		t.Skip("grid Monte Carlo is slow under -short")
	}
	cfg := traceGridConfig(t)
	opt := mc.Options{Trials: 12, Seed: 7}

	ref := captureTraceJSONL(t, func() error {
		sys, err := pdn.NewSystem(cfg)
		if err != nil {
			return err
		}
		_, err = mc.Run(sys, opt)
		return err
	})
	if !bytes.Contains(ref, []byte(`"spec_violation"`)) {
		t.Fatalf("grid trace has no spec_violation events:\n%.400s", ref)
	}

	for _, w := range mcWorkerCounts {
		popt := opt
		popt.Workers = w
		got := captureTraceJSONL(t, func() error {
			_, err := mc.RunParallel(func() (mc.System, error) { return pdn.NewSystem(cfg) }, popt)
			return err
		})
		if !bytes.Equal(got, ref) {
			t.Fatalf("Workers=%d: grid trace differs from serial run (%d vs %d bytes)\nfirst divergence: %s",
				w, len(got), len(ref), firstDivergence(got, ref))
		}
	}
}

// traceGridConfig builds the same small tuned grid the determinism matrix
// uses, so the two tests pin the same pipeline from different angles.
func traceGridConfig(t *testing.T) pdn.TTFConfig {
	t.Helper()
	spec := pdn.PG1Spec()
	spec.NX, spec.NY = 6, 6
	spec.PadPeriod = 3
	g, err := pdn.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	const refViaAmps = 0.065
	if err := g.Tune(0.05, refViaAmps); err != nil {
		t.Fatal(err)
	}
	mk := func(medYears float64) viaarray.TTFModel {
		return viaarray.TTFModel{
			Dist:       stat.LogNormal{Mu: math.Log(phys.YearsToSeconds(medYears)), Sigma: 0.35},
			RefCurrent: refViaAmps,
			FailK:      16,
		}
	}
	return pdn.TTFConfig{
		Grid: g,
		Models: map[cudd.Pattern]viaarray.TTFModel{
			cudd.Plus:   mk(6),
			cudd.TShape: mk(7),
			cudd.LShape: mk(8),
		},
		Criterion:  pdn.IRDrop,
		IRDropFrac: 0.10,
	}
}

// firstDivergence renders the line around the first differing byte.
func firstDivergence(got, ref []byte) string {
	n := len(got)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if got[i] != ref[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return "offset " + strconv.Itoa(i) + ": got ..." + string(got[lo:min(i+80, len(got))]) +
				"... want ..." + string(ref[lo:min(i+80, len(ref))]) + "..."
		}
	}
	return "streams share a prefix; lengths differ"
}
