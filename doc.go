// Package emvia is a stress-aware electromigration (EM) reliability
// analyzer for on-chip power grids with via arrays — a from-scratch Go
// implementation of Mishra, Jain, Marella and Sapatnekar, "Incorporating the
// Role of Stress on Electromigration in Power Grids with Via Arrays",
// DAC 2017.
//
// The library spans the paper's entire stack:
//
//   - internal/fem + internal/mesh: 3-D thermoelastic finite-element
//     analysis of Cu dual-damascene structures (the ABAQUS substitute),
//     on a home-grown sparse CSR / preconditioned-CG stack
//     (internal/sparse, internal/solver).
//   - internal/cudd + internal/chartable: via-array structure builder and
//     the per-technology thermomechanical-stress characterization table.
//   - internal/emdist: the Korhonen void-nucleation TTF model, lognormal
//     critical stress, and calibration.
//   - internal/viaarray + internal/mc: Algorithm-1 Monte Carlo of
//     sequential via failures with current crowding and redistribution.
//   - internal/spice + internal/pdn: SPICE-dialect power-grid decks
//     (IBM-benchmark style), nodal analysis, synthetic benchmark
//     generation (single- and multi-layer), Blech wire screening,
//     criticality reports, and the grid-level TTF Monte Carlo.
//   - internal/korhonen: the 1-D stress-evolution PDE behind equation (1).
//   - internal/baseline: Black's equation and j_max screening — the
//     traditional methodology the paper improves on.
//   - internal/thermal: compact die thermal network for local-temperature
//     TTF derating.
//   - internal/core: the end-to-end pipeline.
//
// Start with examples/quickstart, or run cmd/paperfigs to regenerate every
// figure and table of the paper.
package emvia
