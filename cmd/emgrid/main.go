// Command emgrid is the command-line front end of the library: it generates
// benchmark-style power-grid decks, reports their IR drop, runs the FEA
// stress characterization campaign, and performs the full stress-aware EM
// lifetime analysis of a grid.
//
// Subcommands:
//
//	emgrid gen -name PG1 -nx 20 -ny 20 -padperiod 5 -ir 0.065 -viacurrent 0.01 -out grid.sp
//	emgrid irdrop -deck grid.sp -vdd 1.8
//	emgrid characterize -arrays 1,4,8 -widths 2u,2.5u,3u -out table.json
//	emgrid analyze -deck grid.sp -array 4 -arraycrit rinf -syscrit ir -trials 500
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"emvia/internal/chartable"
	"emvia/internal/cliobs"
	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/mc"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/profiling"
	"emvia/internal/spice"
	"emvia/internal/trace"
	"emvia/internal/viaarray"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "-h" || args[0] == "--help" || args[0] == "help" {
		usage()
		return
	}
	// Global flags precede the subcommand: emgrid -cpuprofile cpu.out analyze …
	global := flag.NewFlagSet("emgrid", flag.ExitOnError)
	global.Usage = usage
	cpuProfile := global.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := global.String("memprofile", "", "write a heap profile to this file on exit")
	var obs cliobs.Config
	obs.RegisterFlags(global)
	global.Parse(args) // stops at the subcommand, the first non-flag argument
	args = global.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emgrid: %v\n", err)
		os.Exit(1)
	}
	finishObs, err := cliobs.Setup(obs, "emgrid", global)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emgrid: %v\n", err)
		os.Exit(1)
	}
	switch args[0] {
	case "gen":
		err = cmdGen(args[1:])
	case "irdrop":
		err = cmdIRDrop(args[1:])
	case "characterize":
		err = cmdCharacterize(args[1:])
	case "charmodels":
		err = cmdCharModels(args[1:])
	case "analyze":
		err = cmdAnalyze(args[1:], obs.Engine)
	case "xsection":
		err = cmdXSection(args[1:])
	case "hotspots":
		err = cmdHotspots(args[1:])
	case "optimize":
		err = cmdOptimize(args[1:])
	case "help":
		usage()
	default:
		prof.Stop()
		fmt.Fprintf(os.Stderr, "emgrid: unknown subcommand %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if terr := finishObs(); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "emgrid: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: emgrid <gen|irdrop|characterize|analyze> [flags]
  gen           generate and tune a synthetic power-grid SPICE deck
  irdrop        solve a deck and report the IR-drop profile
  characterize  run the FEA stress characterization campaign to JSON
  charmodels    characterize via-array TTF models (all patterns) to JSON
  analyze       run the stress-aware EM lifetime analysis of a deck
  xsection      render a Cu DD via-array structure cross-section as SVG
  hotspots      rank via arrays by EM criticality; optional IR heatmap SVG
  optimize      pick the best via-array configuration for a wire + rules
Global flags (before the subcommand):
  -cpuprofile FILE   write a CPU profile
  -memprofile FILE   write a heap profile on exit
  -metrics           print a telemetry report to stderr on exit
  -metrics-json FILE write a JSON telemetry report on exit ("-" = stdout)
  -progress          periodic progress lines during long Monte-Carlo runs
  -trace FILE        JSONL failure-cascade trace ("-" = stdout); see emtrace
  -trace-chrome FILE Chrome trace_event JSON (chrome://tracing, Perfetto)
  -trace-nosamples   omit per-component TTF sample events from traces
  -http ADDR         live monitor: /status, /debug/vars, /debug/pprof
  -engine ENG        analysis engine for analyze: mc (full Monte Carlo),
                     steady (linear-time screen only), both (screened MC)
Every trace/metrics artifact gets a <file>.manifest.json provenance record.
Run 'emgrid <subcommand> -h' for flags.`)
}

// femFlags registers the FEA tuning flags shared by every subcommand that
// runs stress characterization, and returns a hook applying them to the
// analyzer after flag parsing.
func femFlags(fs *flag.FlagSet) func(a *core.Analyzer) error {
	j := fs.Int("j", 0, "FEA worker goroutines, 0 = GOMAXPROCS (results are bit-identical for any value)")
	cache := fs.String("stresscache", "", `persistent stress cache: a directory, or "auto" for the default location (EMVIA_STRESS_CACHE or the user cache dir)`)
	return func(a *core.Analyzer) error {
		a.FEA.Workers = *j
		if *cache == "" {
			return nil
		}
		dir := *cache
		if dir == "auto" {
			dir = "" // let core resolve the env/user-cache default
		}
		return a.EnableStressCache(dir)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("name", "PG1", "grid name: PG1, PG2, PG5, or custom")
	nx := fs.Int("nx", 0, "stripes in x (0 = preset default)")
	ny := fs.Int("ny", 0, "stripes in y (0 = preset default)")
	padPeriod := fs.Int("padperiod", 0, "pad spacing in stripes (0 = preset default)")
	ir := fs.Float64("ir", 0.065, "tuned nominal worst IR drop, fraction of Vdd")
	viaCur := fs.Float64("viacurrent", 0.01, "tuned busiest via-array current, A")
	out := fs.String("out", "", "output deck path (default stdout)")
	seed := fs.Int64("seed", 1, "load-distribution seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	var spec pdn.GridSpec
	switch strings.ToUpper(*name) {
	case "PG1":
		spec = pdn.PG1Spec()
	case "PG2":
		spec = pdn.PG2Spec()
	case "PG5":
		spec = pdn.PG5Spec()
	default:
		spec = pdn.PG1Spec()
		spec.Name = *name
	}
	if *nx > 0 {
		spec.NX = *nx
	}
	if *ny > 0 {
		spec.NY = *ny
	}
	if *padPeriod > 0 {
		spec.PadPeriod = *padPeriod
	}
	spec.Seed = *seed
	g, err := pdn.Generate(spec)
	if err != nil {
		return err
	}
	if err := g.Tune(*ir, *viaCur); err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.Netlist.Write(w); err != nil {
		return err
	}
	imax, irGot, err := g.MaxViaCurrent()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d via arrays, nominal IR %.2f%%, busiest array %.2f mA\n",
		spec.Name, len(g.Vias), irGot*100, imax*1e3)
	return nil
}

func cmdIRDrop(args []string) error {
	fs := flag.NewFlagSet("irdrop", flag.ExitOnError)
	deck := fs.String("deck", "", "SPICE deck path (required)")
	vdd := fs.Float64("vdd", 1.8, "supply voltage for IR percentages")
	worst := fs.Int("worst", 10, "how many worst nodes to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	if *deck == "" {
		return fmt.Errorf("irdrop: -deck is required")
	}
	f, err := os.Open(*deck)
	if err != nil {
		return err
	}
	defer f.Close()
	nl, err := spice.Parse(f)
	if err != nil {
		return err
	}
	c, err := spice.Compile(nl)
	if err != nil {
		return err
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		return err
	}
	type nodeDrop struct {
		name string
		v    float64
	}
	drops := make([]nodeDrop, 0, c.NumNodes())
	for i := 0; i < c.NumNodes(); i++ {
		drops = append(drops, nodeDrop{c.NodeName(i), op.VoltageAt(i)})
	}
	sort.Slice(drops, func(i, j int) bool { return drops[i].v < drops[j].v })
	fmt.Printf("%d nodes, %d resistors; worst IR drop %.3f%% of Vdd=%g\n",
		c.NumNodes(), c.NumResistors(), op.WorstIRDropFrac(*vdd)*100, *vdd)
	n := *worst
	if n > len(drops) {
		n = len(drops)
	}
	fmt.Printf("%-20s %12s %10s\n", "node", "voltage (V)", "drop (%)")
	for _, d := range drops[:n] {
		fmt.Printf("%-20s %12.6f %10.3f\n", d.name, d.v, (*vdd-d.v) / *vdd * 100)
	}
	return nil
}

func parseList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := spice.ParseValue(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	arrays := fs.String("arrays", "1,4,8", "via-array configurations n (n×n), comma-separated")
	widths := fs.String("widths", "2u,2.5u,3u", "wire widths with SPICE suffixes, comma-separated")
	out := fs.String("out", "", "output JSON path (default stdout)")
	fast := fs.Bool("fast", false, "coarse FEA meshes")
	fem := femFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	ns, err := parseIntList(*arrays)
	if err != nil {
		return fmt.Errorf("characterize: -arrays: %w", err)
	}
	ws, err := parseList(*widths)
	if err != nil {
		return fmt.Errorf("characterize: -widths: %w", err)
	}
	a := core.NewAnalyzer()
	if *fast {
		a.Base.Margin = 1.0 * phys.Micron
		a.Base.StepOutside = 0.5 * phys.Micron
	}
	if err := fem(a); err != nil {
		return fmt.Errorf("characterize: %w", err)
	}
	table, err := a.BuildStressTable(ns, ws, func(k chartable.Key, w float64) {
		fmt.Fprintf(os.Stderr, "FEA %v at width %.2g um\n", k, w/phys.Micron)
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return table.Save(w)
}

// parseArrayCriterion maps the CLI spelling to a criterion.
func parseArrayCriterion(s string) (core.ArrayCriterion, error) {
	switch s {
	case "wl":
		return core.ArrayWeakestLink(), nil
	case "2x":
		return core.ArrayResistance2x(), nil
	case "rinf":
		return core.ArrayOpenCircuit(), nil
	}
	return core.ArrayCriterion{}, fmt.Errorf("unknown array criterion %q (want wl, 2x or rinf)", s)
}

func cmdCharModels(args []string) error {
	fs := flag.NewFlagSet("charmodels", flag.ExitOnError)
	arrayN := fs.Int("array", 4, "via-array configuration n (n×n)")
	arrayCrit := fs.String("arraycrit", "rinf", "via-array failure criterion: wl, 2x, rinf")
	width := fs.String("width", "2u", "wire width (SPICE suffixes)")
	trials := fs.Int("trials", 500, "Monte-Carlo trials")
	seed := fs.Int64("seed", 2017, "random seed")
	out := fs.String("out", "", "output JSON path (default stdout)")
	fast := fs.Bool("fast", false, "coarse FEA meshes")
	fem := femFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	ac, err := parseArrayCriterion(*arrayCrit)
	if err != nil {
		return fmt.Errorf("charmodels: %w", err)
	}
	w, err := spice.ParseValue(*width)
	if err != nil {
		return fmt.Errorf("charmodels: -width: %w", err)
	}
	a := core.NewAnalyzer()
	if *fast {
		a.Base.Margin = 1.0 * phys.Micron
		a.Base.StepOutside = 0.5 * phys.Micron
	}
	if err := fem(a); err != nil {
		return fmt.Errorf("charmodels: %w", err)
	}
	models, err := a.ViaArrayModels(*arrayN, w, 1e10, ac, *trials, *seed)
	if err != nil {
		return err
	}
	set := viaarray.ModelSet{
		ArrayN: *arrayN,
		FailK:  viaarray.FailKForResistanceFactor(*arrayN, resistanceFactorOf(ac)),
		Models: models,
	}
	dst := os.Stdout
	if *out != "" {
		fo, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer fo.Close()
		dst = fo
	}
	return set.Save(dst)
}

func resistanceFactorOf(c core.ArrayCriterion) float64 {
	if c.WeakestLink {
		return 1 // FailKForResistanceFactor(n, 1) = 1: first via
	}
	return c.ResistanceFactor
}

func cmdAnalyze(args []string, engineFlag string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	deck := fs.String("deck", "", "SPICE deck path (required; node names n<layer>_<x>_<y>)")
	models := fs.String("models", "", "precomputed via-array model set JSON (skips FEA + characterization)")
	arrayN := fs.Int("array", 4, "via-array configuration n (n×n)")
	arrayCrit := fs.String("arraycrit", "rinf", "via-array failure criterion: wl, 2x, rinf")
	sysCrit := fs.String("syscrit", "ir", "system failure criterion: wl, ir")
	irFrac := fs.Float64("irfrac", 0.10, "IR-drop threshold, fraction of Vdd")
	vdd := fs.Float64("vdd", 1.8, "supply voltage")
	trials := fs.Int("trials", 500, "Monte-Carlo trials (both levels)")
	seed := fs.Int64("seed", 2017, "random seed")
	fast := fs.Bool("fast", false, "coarse FEA meshes")
	screenOut := fs.String("screenout", "", "write the steady-state screen classification JSON here (engines steady/both)")
	fem := femFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	engine, err := mc.ParseEngine(engineFlag)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if *deck == "" {
		return fmt.Errorf("analyze: -deck is required")
	}
	f, err := os.Open(*deck)
	if err != nil {
		return err
	}
	defer f.Close()
	spec := pdn.PG1Spec()
	spec.Vdd = *vdd
	g, err := pdn.LoadDeck(f, spec)
	if err != nil {
		return err
	}

	ac, err := parseArrayCriterion(*arrayCrit)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	var sc pdn.Criterion
	switch *sysCrit {
	case "wl":
		sc = pdn.WeakestLink
	case "ir":
		sc = pdn.IRDrop
	default:
		return fmt.Errorf("analyze: unknown -syscrit %q", *sysCrit)
	}

	a := core.NewAnalyzer()
	if *fast {
		a.Base.Margin = 1.0 * phys.Micron
		a.Base.StepOutside = 0.5 * phys.Micron
	}
	if err := fem(a); err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if engine == mc.EngineSteady {
		// Screening-only backend: one pristine solve plus one linear walk,
		// no characterization, no Monte Carlo.
		screen, err := a.ScreenGrid(g)
		if err != nil {
			return err
		}
		recordScreen(screen)
		if err := writeScreenJSON(*screenOut, g, screen); err != nil {
			return err
		}
		printScreen(g, screen)
		return nil
	}
	analysis := core.GridAnalysis{
		Grid:            g,
		ArrayN:          *arrayN,
		ArrayCriterion:  ac,
		SystemCriterion: sc,
		IRDropFrac:      *irFrac,
		CharTrials:      *trials,
		GridTrials:      *trials,
		Seed:            *seed,
		Engine:          engine,
	}
	var rep *core.GridReport
	if *models != "" {
		mf, err := os.Open(*models)
		if err != nil {
			return err
		}
		set, err := viaarray.LoadModelSet(mf)
		mf.Close()
		if err != nil {
			return err
		}
		analysis.ArrayN = set.ArrayN
		rep, err = a.AnalyzeGridWithModels(analysis, set.Models)
		if err != nil {
			return err
		}
	} else {
		var err error
		rep, err = a.AnalyzeGrid(analysis)
		if err != nil {
			return err
		}
	}
	fmt.Printf("grid: %d via arrays; via config %dx%d; array criterion %v; system criterion %v\n",
		len(g.Vias), *arrayN, *arrayN, ac, sc)
	if rep.Screen != nil {
		recordScreen(rep.Screen)
		if err := writeScreenJSON(*screenOut, g, rep.Screen); err != nil {
			return err
		}
		fmt.Printf("  steady screen: %d/%d via arrays mortal (%.1f%%); Monte Carlo pruned to the mortal subset\n",
			rep.Screen.MortalVias, rep.Screen.Vias, 100*rep.Screen.MortalViaFraction())
	}
	for _, p := range []float64{0.003, 0.25, 0.5, 0.75, 0.997} {
		fmt.Printf("  %6.3g%%ile TTF: %7.2f years\n", p*100, rep.PercentileYears(p))
	}
	if inf := len(rep.MC.TTF) - rep.TTF.Len(); inf > 0 {
		fmt.Printf("  (%d of %d trials never reached the criterion)\n", inf, len(rep.MC.TTF))
	}
	return nil
}

// recordScreen mirrors a grid screen into the run-provenance manifest.
func recordScreen(s *pdn.GridScreen) {
	cliobs.RecordScreen(trace.ScreenInfo{
		Vias:           s.Vias,
		MortalVias:     s.MortalVias,
		Segments:       s.Segments,
		MortalSegments: s.MortalSegments,
		SigmaCritViaPa: s.SigmaCritVia,
		SigmaTViaPa:    s.SigmaTVia,
	})
}

// printScreen reports an -engine=steady classification: the headline counts
// and the tightest margins on each side of the mortality frontier.
func printScreen(g *pdn.Grid, s *pdn.GridScreen) {
	fmt.Printf("steady screen: %d via arrays: %d mortal (%.1f%%), %d immortal\n",
		s.Vias, s.MortalVias, 100*s.MortalViaFraction(), s.Vias-s.MortalVias)
	fmt.Printf("  wire segments: %d mortal of %d; σ_crit %.0f MPa, via pre-stress σ_T %.0f MPa\n",
		s.MortalSegments, s.Segments, s.SigmaCritVia/1e6, s.SigmaTVia/1e6)
	idx := make([]int, s.Vias)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(s.ViaMargin[idx[a]]) < math.Abs(s.ViaMargin[idx[b]])
	})
	n := 10
	if n > len(idx) {
		n = len(idx)
	}
	fmt.Printf("  tightest margins (Pa-frontier arrays):\n")
	fmt.Printf("  %-10s %-14s %10s %12s %8s\n", "array", "pattern", "σ (MPa)", "margin (MPa)", "verdict")
	for _, k := range idx[:n] {
		verdict := "immortal"
		if s.ViaMortal[k] {
			verdict = "mortal"
		}
		v := g.Vias[k]
		fmt.Printf("  (%3d,%3d)  %-14s %10.1f %12.1f %8s\n",
			v.IX, v.IY, v.Pattern, s.ViaStress[k]/1e6, s.ViaMargin[k]/1e6, verdict)
	}
}

// writeScreenJSON writes the full per-array classification as the
// -screenout result artifact and registers it with the run manifest.
func writeScreenJSON(path string, g *pdn.Grid, s *pdn.GridScreen) error {
	if path == "" {
		return nil
	}
	type arrayJSON struct {
		IX       int     `json:"ix"`
		IY       int     `json:"iy"`
		Pattern  string  `json:"pattern"`
		StressPa float64 `json:"stress_pa"`
		MarginPa float64 `json:"margin_pa"`
		Mortal   bool    `json:"mortal"`
	}
	out := struct {
		Vias           int         `json:"vias"`
		MortalVias     int         `json:"mortal_vias"`
		Segments       int         `json:"segments"`
		MortalSegments int         `json:"mortal_segments"`
		SigmaCritViaPa float64     `json:"sigma_crit_via_pa"`
		SigmaTViaPa    float64     `json:"sigma_t_via_pa"`
		Arrays         []arrayJSON `json:"arrays"`
	}{
		Vias:           s.Vias,
		MortalVias:     s.MortalVias,
		Segments:       s.Segments,
		MortalSegments: s.MortalSegments,
		SigmaCritViaPa: s.SigmaCritVia,
		SigmaTViaPa:    s.SigmaTVia,
	}
	for k, v := range g.Vias {
		out.Arrays = append(out.Arrays, arrayJSON{
			IX: v.IX, IY: v.IY, Pattern: v.Pattern.String(),
			StressPa: s.ViaStress[k], MarginPa: s.ViaMargin[k], Mortal: s.ViaMortal[k],
		})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	cliobs.RecordArtifact(path)
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func cmdXSection(args []string) error {
	fs := flag.NewFlagSet("xsection", flag.ExitOnError)
	arrayN := fs.Int("array", 4, "via-array configuration n (n×n)")
	pattern := fs.String("pattern", "plus", "intersection pattern: plus, t, l")
	width := fs.String("width", "2u", "wire width (SPICE suffixes)")
	spacing := fs.String("spacing", "0", "minimum via spacing (0 = equal-area geometry)")
	px := fs.Int("px", 800, "image width in pixels")
	out := fs.String("out", "", "output SVG path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	p := cudd.DefaultParams()
	p.ArrayN = *arrayN
	switch *pattern {
	case "plus":
		p.Pattern = cudd.Plus
	case "t":
		p.Pattern = cudd.TShape
	case "l":
		p.Pattern = cudd.LShape
	default:
		return fmt.Errorf("xsection: unknown pattern %q", *pattern)
	}
	w, err := spice.ParseValue(*width)
	if err != nil {
		return fmt.Errorf("xsection: -width: %w", err)
	}
	p.WireWidth = w
	sp, err := spice.ParseValue(*spacing)
	if err != nil {
		return fmt.Errorf("xsection: -spacing: %w", err)
	}
	p.ViaSpacing = sp
	// Finer in-array resolution renders crisper via outlines.
	if v, err := p.Validate(); err == nil {
		p.StepArray = v.ViaSide() / 2
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return cudd.WriteStructureSVG(dst, p, *px)
}

func cmdHotspots(args []string) error {
	fs := flag.NewFlagSet("hotspots", flag.ExitOnError)
	deck := fs.String("deck", "", "SPICE deck path (required)")
	models := fs.String("models", "", "precomputed via-array model set JSON (required)")
	irFrac := fs.Float64("irfrac", 0.10, "IR-drop threshold, fraction of Vdd")
	vdd := fs.Float64("vdd", 1.8, "supply voltage")
	trials := fs.Int("trials", 500, "Monte-Carlo trials")
	seed := fs.Int64("seed", 2017, "random seed")
	top := fs.Int("top", 15, "how many hotspots to list")
	irmap := fs.String("irmap", "", "also write the nominal IR-drop heatmap SVG here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	if *deck == "" || *models == "" {
		return fmt.Errorf("hotspots: -deck and -models are required")
	}
	f, err := os.Open(*deck)
	if err != nil {
		return err
	}
	defer f.Close()
	spec := pdn.PG1Spec()
	spec.Vdd = *vdd
	g, err := pdn.LoadDeck(f, spec)
	if err != nil {
		return err
	}
	mf, err := os.Open(*models)
	if err != nil {
		return err
	}
	set, err := viaarray.LoadModelSet(mf)
	mf.Close()
	if err != nil {
		return err
	}
	if *irmap != "" {
		// The heatmap needs the lattice dimensions; infer from via extremes.
		maxX, maxY := 0, 0
		for _, v := range g.Vias {
			if v.IX > maxX {
				maxX = v.IX
			}
			if v.IY > maxY {
				maxY = v.IY
			}
		}
		g.Spec.NX, g.Spec.NY = maxX+1, maxY+1
		mf, err := os.Create(*irmap)
		if err != nil {
			return err
		}
		if err := g.WriteIRDropSVG(mf, 640); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *irmap)
	}
	res, err := pdn.AnalyzeTTF(pdn.TTFConfig{
		Grid: g, Models: set.Models, Criterion: pdn.IRDrop, IRDropFrac: *irFrac,
	}, *trials, *seed)
	if err != nil {
		return err
	}
	rep, err := pdn.CriticalityReport(g, res, *top)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-14s %14s %14s\n", "array", "pattern", "first-failures", "involvements")
	for _, e := range rep {
		fmt.Printf("(%3d,%3d)  %-14s %14d %14d\n", e.Via.IX, e.Via.IY, e.Via.Pattern, e.FirstFailures, e.Involvements)
	}
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	pattern := fs.String("pattern", "plus", "intersection pattern: plus, t, l")
	width := fs.String("width", "2u", "wire width (SPICE suffixes)")
	spacing := fs.String("spacing", "0", "minimum via spacing rule")
	crit := fs.String("arraycrit", "2x", "array failure criterion: wl, 2x, rinf")
	trials := fs.Int("trials", 500, "Monte-Carlo trials per candidate")
	seed := fs.Int64("seed", 2017, "random seed")
	fast := fs.Bool("fast", false, "coarse FEA meshes")
	fem := femFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cliobs.RecordFlags(fs)
	var pat cudd.Pattern
	switch *pattern {
	case "plus":
		pat = cudd.Plus
	case "t":
		pat = cudd.TShape
	case "l":
		pat = cudd.LShape
	default:
		return fmt.Errorf("optimize: unknown pattern %q", *pattern)
	}
	w, err := spice.ParseValue(*width)
	if err != nil {
		return fmt.Errorf("optimize: -width: %w", err)
	}
	sp, err := spice.ParseValue(*spacing)
	if err != nil {
		return fmt.Errorf("optimize: -spacing: %w", err)
	}
	ac, err := parseArrayCriterion(*crit)
	if err != nil {
		return fmt.Errorf("optimize: %w", err)
	}
	a := core.NewAnalyzer()
	if *fast {
		a.Base.Margin = 1.0 * phys.Micron
		a.Base.StepOutside = 0.5 * phys.Micron
	}
	if err := fem(a); err != nil {
		return fmt.Errorf("optimize: %w", err)
	}
	choices, best, err := a.OptimizeArray(core.OptimizeArraySpec{
		Pattern:    pat,
		WireWidth:  w,
		ViaSpacing: sp,
		Criterion:  ac,
		Trials:     *trials,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %14s %12s %s\n", "config", "extent (um)", "worst-case (y)", "median (y)", "note")
	for i, c := range choices {
		if !c.Feasible {
			fmt.Printf("%dx%-5d %12s %14s %12s %s\n", c.ArrayN, c.ArrayN, "-", "-", "-", c.Reason)
			continue
		}
		note := ""
		if i == best {
			note = "<== best"
		}
		fmt.Printf("%dx%-5d %12.2f %14.2f %12.2f %s\n",
			c.ArrayN, c.ArrayN, c.ExtentM/phys.Micron*1, c.WorstCaseYears, c.MedianYears, note)
	}
	return nil
}
