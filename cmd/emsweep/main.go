// Command emsweep performs one-at-a-time sensitivity analysis of the
// stress-aware EM model: each physical parameter is perturbed by ±delta
// around its default and the resulting shift of the via-array TTF metrics
// is reported as a tornado table. Because most of the constants in
// equations (1)–(4) are foundry-confidential, knowing which of them the
// headline metrics actually hinge on is a prerequisite for trusting any
// absolute number.
//
// Usage:
//
//	emsweep [-delta 0.1] [-trials 400] [-array 4] [-fast] [-conc N] [-j N] [-stresscache DIR]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"

	"emvia/internal/cliobs"
	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/phys"
	"emvia/internal/profiling"
	"emvia/internal/stat"
)

type knob struct {
	name  string
	apply func(a *core.Analyzer, factor float64)
}

func knobs() []knob {
	return []knob{
		{"flaw radius Rf", func(a *core.Analyzer, f float64) { a.EM.RfMean *= f }},
		{"surface energy gamma_s", func(a *core.Analyzer, f float64) { a.EM.GammaS *= f }},
		{"activation energy Ea", func(a *core.Analyzer, f float64) { a.EM.Ea *= f }},
		{"bulk modulus B", func(a *core.Analyzer, f float64) { a.EM.Bulk *= f }},
		{"diffusivity D0", func(a *core.Analyzer, f float64) { a.EM.D0 *= f }},
		{"Deff spread sigma", func(a *core.Analyzer, f float64) { a.EM.DeffLogSigma *= f }},
		{"operating T (C)", func(a *core.Analyzer, f float64) { a.EM.TempC *= f }},
		{"stress-free T (C)", func(a *core.Analyzer, f float64) {
			a.Base.AnnealT *= f // changes ΔT and hence every σ_T
		}},
		{"package stress +20 MPa", func(a *core.Analyzer, f float64) {
			// Additive knob: f>1 adds tensile package stress, f<1 subtracts.
			if f > 1 {
				a.PackageStress += 20e6
			} else if f < 1 {
				a.PackageStress -= 20e6
			}
		}},
	}
}

func main() {
	delta := flag.Float64("delta", 0.10, "relative perturbation per knob")
	trials := flag.Int("trials", 400, "Monte-Carlo trials per evaluation")
	arrayN := flag.Int("array", 4, "via-array configuration n (n×n)")
	fast := flag.Bool("fast", false, "coarse FEA meshes")
	seed := flag.Int64("seed", 2017, "random seed")
	workers := flag.Int("j", 0, "FEA worker goroutines, 0 = GOMAXPROCS (results are bit-identical for any value)")
	stressCache := flag.String("stresscache", "", `persistent stress cache: a directory, or "auto" for the default location (EMVIA_STRESS_CACHE or the user cache dir)`)
	conc := flag.Int("conc", 0, "knobs evaluated concurrently (0 = GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	var obs cliobs.Config
	obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emsweep: %v\n", err)
		os.Exit(1)
	}
	finishObs, err := cliobs.Setup(obs, "emsweep", flag.CommandLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emsweep: %v\n", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so error paths below stop the profiles
	// explicitly through fatal.
	fatal := func(format string, a ...any) {
		prof.Stop()
		fmt.Fprintf(os.Stderr, format, a...)
		os.Exit(1)
	}

	mkAnalyzer := func() *core.Analyzer {
		a := core.NewAnalyzer()
		if *fast {
			a.Base.Margin = 1.0 * phys.Micron
			a.Base.StepOutside = 0.5 * phys.Micron
			a.Base.StepZBulk = 1.0 * phys.Micron
		}
		a.FEA.Workers = *workers
		if *stressCache != "" {
			dir := *stressCache
			if dir == "auto" {
				dir = "" // core resolves the env/user-cache default
			}
			if err := a.EnableStressCache(dir); err != nil {
				fatal("emsweep: %v\n", err)
			}
		}
		return a
	}
	eval := func(a *core.Analyzer) (median, worst float64, err error) {
		c, err := a.CharacterizeViaArray(cudd.Plus, *arrayN, a.Base.WireWidth, 1e10,
			core.ArrayOpenCircuit(), *trials, *seed)
		if err != nil {
			return 0, 0, err
		}
		e, err := stat.NewECDF(c.Result.Samples)
		if err != nil {
			return 0, 0, err
		}
		return phys.SecondsToYears(e.Percentile(0.5)), phys.SecondsToYears(e.Percentile(0.003)), nil
	}

	baseMed, baseWorst, err := eval(mkAnalyzer())
	if err != nil {
		fatal("emsweep: baseline: %v\n", err)
	}
	fmt.Printf("baseline %dx%d Plus array (R=inf): median %.2f y, worst-case %.2f y\n\n",
		*arrayN, *arrayN, baseMed, baseWorst)

	type row struct {
		name           string
		lowMed, hiMed  float64
		swingMedianPct float64
	}
	// Knobs are independent — every evaluation builds its own analyzer — so
	// they run concurrently under a worker cap. Results and skip diagnostics
	// are collected per index and emitted in knob order, keeping the output
	// identical to a serial sweep.
	ks := knobs()
	type knobResult struct {
		med  [2]float64
		skip string
	}
	results := make([]knobResult, len(ks))
	nconc := *conc
	if nconc <= 0 {
		nconc = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, nconc)
	var wg sync.WaitGroup
	for i, k := range ks {
		wg.Add(1)
		go func(i int, k knob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for s, f := range []float64{1 - *delta, 1 + *delta} {
				a := mkAnalyzer()
				k.apply(a, f)
				m, _, err := eval(a)
				if err != nil {
					results[i].skip = fmt.Sprintf("emsweep: %s ×%.2f: %v (skipped)", k.name, f, err)
					return
				}
				results[i].med[s] = m
			}
		}(i, k)
	}
	wg.Wait()
	var rows []row
	for i, k := range ks {
		r := results[i]
		if r.skip != "" {
			fmt.Fprintln(os.Stderr, r.skip)
			continue
		}
		rows = append(rows, row{
			name:           k.name,
			lowMed:         r.med[0],
			hiMed:          r.med[1],
			swingMedianPct: 100 * math.Abs(r.med[1]-r.med[0]) / baseMed,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].swingMedianPct > rows[j].swingMedianPct })

	fmt.Printf("%-26s %12s %12s %10s\n", "parameter (±"+fmt.Sprintf("%.0f%%", *delta*100)+")", "-delta (y)", "+delta (y)", "swing")
	for _, r := range rows {
		fmt.Printf("%-26s %12.2f %12.2f %9.1f%%\n", r.name, r.lowMed, r.hiMed, r.swingMedianPct)
	}
	fmt.Println("\nswing = |median(+delta) − median(−delta)| / baseline median")
	if err := prof.Stop(); err != nil {
		fatal("emsweep: %v\n", err)
	}
	if err := finishObs(); err != nil {
		fatal("emsweep: %v\n", err)
	}
}
