// Command emsweep performs one-at-a-time sensitivity analysis of the
// stress-aware EM model: each physical parameter is perturbed by ±delta
// around its default and the resulting shift of the via-array TTF metrics
// is reported as a tornado table. Because most of the constants in
// equations (1)–(4) are foundry-confidential, knowing which of them the
// headline metrics actually hinge on is a prerequisite for trusting any
// absolute number.
//
// Usage:
//
//	emsweep [-delta 0.1] [-trials 400] [-array 4] [-fast] [-conc N] [-j N] [-stresscache DIR]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"

	"emvia/internal/cliobs"
	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/mc"
	"emvia/internal/phys"
	"emvia/internal/profiling"
	"emvia/internal/stat"
)

type knob struct {
	name  string
	apply func(a *core.Analyzer, factor float64)
}

func knobs() []knob {
	return []knob{
		{"flaw radius Rf", func(a *core.Analyzer, f float64) { a.EM.RfMean *= f }},
		{"surface energy gamma_s", func(a *core.Analyzer, f float64) { a.EM.GammaS *= f }},
		{"activation energy Ea", func(a *core.Analyzer, f float64) { a.EM.Ea *= f }},
		{"bulk modulus B", func(a *core.Analyzer, f float64) { a.EM.Bulk *= f }},
		{"diffusivity D0", func(a *core.Analyzer, f float64) { a.EM.D0 *= f }},
		{"Deff spread sigma", func(a *core.Analyzer, f float64) { a.EM.DeffLogSigma *= f }},
		{"operating T (C)", func(a *core.Analyzer, f float64) { a.EM.TempC *= f }},
		{"stress-free T (C)", func(a *core.Analyzer, f float64) {
			a.Base.AnnealT *= f // changes ΔT and hence every σ_T
		}},
		{"package stress +20 MPa", func(a *core.Analyzer, f float64) {
			// Additive knob: f>1 adds tensile package stress, f<1 subtracts.
			if f > 1 {
				a.PackageStress += 20e6
			} else if f < 1 {
				a.PackageStress -= 20e6
			}
		}},
	}
}

func main() {
	delta := flag.Float64("delta", 0.10, "relative perturbation per knob")
	trials := flag.Int("trials", 400, "Monte-Carlo trials per evaluation")
	arrayN := flag.Int("array", 4, "via-array configuration n (n×n)")
	fast := flag.Bool("fast", false, "coarse FEA meshes")
	seed := flag.Int64("seed", 2017, "random seed")
	workers := flag.Int("j", 0, "FEA worker goroutines, 0 = GOMAXPROCS (results are bit-identical for any value)")
	stressCache := flag.String("stresscache", "", `persistent stress cache: a directory, or "auto" for the default location (EMVIA_STRESS_CACHE or the user cache dir)`)
	conc := flag.Int("conc", 0, "knobs evaluated concurrently (0 = GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	var obs cliobs.Config
	obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emsweep: %v\n", err)
		os.Exit(1)
	}
	finishObs, err := cliobs.Setup(obs, "emsweep", flag.CommandLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emsweep: %v\n", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so error paths below stop the profiles
	// explicitly through fatal.
	fatal := func(format string, a ...any) {
		prof.Stop()
		fmt.Fprintf(os.Stderr, format, a...)
		os.Exit(1)
	}
	engine, err := mc.ParseEngine(obs.Engine) // Setup already validated it
	if err != nil {
		fatal("emsweep: %v\n", err)
	}

	mkAnalyzer := func() *core.Analyzer {
		a := core.NewAnalyzer()
		if *fast {
			a.Base.Margin = 1.0 * phys.Micron
			a.Base.StepOutside = 0.5 * phys.Micron
			a.Base.StepZBulk = 1.0 * phys.Micron
		}
		a.FEA.Workers = *workers
		if *stressCache != "" {
			dir := *stressCache
			if dir == "auto" {
				dir = "" // core resolves the env/user-cache default
			}
			if err := a.EnableStressCache(dir); err != nil {
				fatal("emsweep: %v\n", err)
			}
		}
		return a
	}
	eval := func(a *core.Analyzer) (median, worst float64, err error) {
		c, err := a.CharacterizeViaArray(cudd.Plus, *arrayN, a.Base.WireWidth, 1e10,
			core.ArrayOpenCircuit(), *trials, *seed)
		if err != nil {
			return 0, 0, err
		}
		e, err := stat.NewECDF(c.Result.Samples)
		if err != nil {
			return 0, 0, err
		}
		return phys.SecondsToYears(e.Percentile(0.5)), phys.SecondsToYears(e.Percentile(0.003)), nil
	}
	// screenEval is the linear-time steady-state screen of the same array:
	// the tightest per-via stress margin (MPa, ≤0 = mortal) and the mortal
	// via count. -engine=steady sweeps this margin instead of the
	// Monte-Carlo TTF; -engine=both reports both.
	screenEval := func(a *core.Analyzer) (marginMPa float64, mortal int, err error) {
		s, err := a.ArraySteadyScreen(cudd.Plus, *arrayN, a.Base.WireWidth, 1e10)
		if err != nil {
			return 0, 0, err
		}
		tightest := math.Inf(1)
		for _, m := range s.ViaMargin {
			if m < tightest {
				tightest = m
			}
		}
		return tightest / 1e6, s.MortalVias, nil
	}

	if engine == mc.EngineSteady {
		steadySweep(mkAnalyzer, screenEval, *arrayN, *delta, fatal)
		if err := prof.Stop(); err != nil {
			fatal("emsweep: %v\n", err)
		}
		if err := finishObs(); err != nil {
			fatal("emsweep: %v\n", err)
		}
		return
	}

	aBase := mkAnalyzer()
	baseMed, baseWorst, err := eval(aBase)
	if err != nil {
		fatal("emsweep: baseline: %v\n", err)
	}
	fmt.Printf("baseline %dx%d Plus array (R=inf): median %.2f y, worst-case %.2f y\n",
		*arrayN, *arrayN, baseMed, baseWorst)
	if engine == mc.EngineBoth {
		margin, mortal, err := screenEval(aBase)
		if err != nil {
			fatal("emsweep: baseline screen: %v\n", err)
		}
		fmt.Printf("baseline steady screen: %d/%d vias mortal, tightest margin %.1f MPa\n",
			mortal, *arrayN**arrayN, margin)
	}
	fmt.Println()

	type row struct {
		name               string
		lowMed, hiMed      float64
		swingMedianPct     float64
		loMortal, hiMortal int
	}
	// Knobs are independent — every evaluation builds its own analyzer — so
	// they run concurrently under a worker cap. Results and skip diagnostics
	// are collected per index and emitted in knob order, keeping the output
	// identical to a serial sweep.
	ks := knobs()
	type knobResult struct {
		med    [2]float64
		mortal [2]int
		skip   string
	}
	results := make([]knobResult, len(ks))
	nconc := *conc
	if nconc <= 0 {
		nconc = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, nconc)
	var wg sync.WaitGroup
	for i, k := range ks {
		wg.Add(1)
		go func(i int, k knob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for s, f := range []float64{1 - *delta, 1 + *delta} {
				a := mkAnalyzer()
				k.apply(a, f)
				m, _, err := eval(a)
				if err != nil {
					results[i].skip = fmt.Sprintf("emsweep: %s ×%.2f: %v (skipped)", k.name, f, err)
					return
				}
				results[i].med[s] = m
				if engine == mc.EngineBoth {
					// The FEA cache of a is warm after eval, so the
					// screen costs one linear solve.
					_, mortal, err := screenEval(a)
					if err != nil {
						results[i].skip = fmt.Sprintf("emsweep: %s ×%.2f screen: %v (skipped)", k.name, f, err)
						return
					}
					results[i].mortal[s] = mortal
				}
			}
		}(i, k)
	}
	wg.Wait()
	var rows []row
	for i, k := range ks {
		r := results[i]
		if r.skip != "" {
			fmt.Fprintln(os.Stderr, r.skip)
			continue
		}
		rows = append(rows, row{
			name:           k.name,
			lowMed:         r.med[0],
			hiMed:          r.med[1],
			swingMedianPct: 100 * math.Abs(r.med[1]-r.med[0]) / baseMed,
			loMortal:       r.mortal[0],
			hiMortal:       r.mortal[1],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].swingMedianPct > rows[j].swingMedianPct })

	if engine == mc.EngineBoth {
		fmt.Printf("%-26s %12s %12s %10s %13s\n", "parameter (±"+fmt.Sprintf("%.0f%%", *delta*100)+")", "-delta (y)", "+delta (y)", "swing", "mortal vias")
		for _, r := range rows {
			fmt.Printf("%-26s %12.2f %12.2f %9.1f%% %8d→%-4d\n", r.name, r.lowMed, r.hiMed, r.swingMedianPct, r.loMortal, r.hiMortal)
		}
	} else {
		fmt.Printf("%-26s %12s %12s %10s\n", "parameter (±"+fmt.Sprintf("%.0f%%", *delta*100)+")", "-delta (y)", "+delta (y)", "swing")
		for _, r := range rows {
			fmt.Printf("%-26s %12.2f %12.2f %9.1f%%\n", r.name, r.lowMed, r.hiMed, r.swingMedianPct)
		}
	}
	fmt.Println("\nswing = |median(+delta) − median(−delta)| / baseline median")
	if err := prof.Stop(); err != nil {
		fatal("emsweep: %v\n", err)
	}
	if err := finishObs(); err != nil {
		fatal("emsweep: %v\n", err)
	}
}

// steadySweep is the -engine=steady tornado: each knob's effect on the
// tightest steady-state via stress margin of the array. No Monte Carlo runs
// at all — every evaluation is one FEA pre-stress solve plus one linear
// network solve, so the whole sweep is seconds, not minutes.
func steadySweep(mkAnalyzer func() *core.Analyzer, screenEval func(*core.Analyzer) (float64, int, error), arrayN int, delta float64, fatal func(string, ...any)) {
	baseMargin, baseMortal, err := screenEval(mkAnalyzer())
	if err != nil {
		fatal("emsweep: baseline screen: %v\n", err)
	}
	fmt.Printf("baseline %dx%d Plus array steady screen: %d/%d vias mortal, tightest margin %.1f MPa\n\n",
		arrayN, arrayN, baseMortal, arrayN*arrayN, baseMargin)
	type row struct {
		name   string
		lo, hi float64
		swing  float64
	}
	var rows []row
	for _, k := range knobs() {
		var m [2]float64
		skipped := false
		for s, f := range []float64{1 - delta, 1 + delta} {
			a := mkAnalyzer()
			k.apply(a, f)
			mm, _, err := screenEval(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "emsweep: %s ×%.2f: %v (skipped)\n", k.name, f, err)
				skipped = true
				break
			}
			m[s] = mm
		}
		if skipped {
			continue
		}
		rows = append(rows, row{k.name, m[0], m[1], math.Abs(m[1] - m[0])})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].swing > rows[j].swing })
	fmt.Printf("%-26s %14s %14s %12s\n",
		fmt.Sprintf("parameter (±%.0f%%)", delta*100), "-delta (MPa)", "+delta (MPa)", "swing (MPa)")
	for _, r := range rows {
		fmt.Printf("%-26s %14.1f %14.1f %12.1f\n", r.name, r.lo, r.hi, r.swing)
	}
	fmt.Println("\nswing = |margin(+delta) − margin(−delta)| of the tightest steady-state via stress margin")
}
