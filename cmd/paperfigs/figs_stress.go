package main

import (
	"fmt"
	"math"
	"os"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/mat"
	"emvia/internal/phys"
	"emvia/internal/textplot"
)

// figTable1 prints the material property table (paper Table 1).
func figTable1(_ *core.Analyzer, _ options) error {
	fmt.Println("Table 1: Mechanical properties of materials in Cu DD")
	fmt.Printf("%-10s %-8s %14s %10s %14s\n", "Structure", "Material", "E (GPa)", "Poisson", "CTE (ppm/°C)")
	rows := []struct {
		structure string
		id        mat.ID
	}{
		{"Substrate", mat.Silicon},
		{"Bulk", mat.Copper},
		{"ILD", mat.SiCOH},
		{"Barrier", mat.Tantalum},
		{"Capping", mat.SiN},
	}
	for _, r := range rows {
		p := mat.Table1[r.id]
		fmt.Printf("%-10s %-8s %14.1f %10.3g %14.2f\n",
			r.structure, r.id, p.E/phys.GPa, p.Nu, p.CTE/phys.PPM)
	}
	return nil
}

// scanProfile characterizes a structure at fine resolution and returns the
// σ_H scan through via row `row`.
func scanProfile(a *core.Analyzer, n int, pattern cudd.Pattern, row int) (*cudd.Result, []float64, []float64, error) {
	p := fineParams(a, n, pattern)
	res, err := cudd.Characterize(p, a.FEA)
	if err != nil {
		return nil, nil, nil, err
	}
	xs, sh := res.RowScan(row)
	return res, xs, sh, nil
}

// printProfile dumps a scan as a data table in the paper's axes (x in µm
// from the wire edge of the scan window, σ_H in MPa).
func printProfile(name string, xs, sh []float64, x0 float64) {
	fmt.Printf("# %s: x(um)  sigmaH(MPa)\n", name)
	for i := range xs {
		fmt.Printf("%8.4f %10.2f\n", (xs[i]-x0)/phys.Micron, sh[i]/phys.MPa)
	}
}

// windowAroundArray clips a scan to ±0.5 µm around the via-array extent and
// rebases x, matching the 0–2 µm windows of Figs 1, 6 and 7.
func windowAroundArray(p cudd.Params, xs, sh []float64) (wx, wy []float64, x0 float64) {
	v, err := p.Validate()
	if err != nil {
		return xs, sh, 0
	}
	cx := v.WireWidth/2 + v.Margin
	half := float64(2*v.ArrayN-1)*(math.Sqrt(v.ViaArea)/float64(v.ArrayN))/2 + 0.5*phys.Micron
	lo, hi := cx-half, cx+half
	for i := range xs {
		if xs[i] >= lo && xs[i] <= hi {
			wx = append(wx, xs[i])
			wy = append(wy, sh[i])
		}
	}
	return wx, wy, lo
}

// fig1 reproduces Figure 1: hydrostatic stress under a 1×1 via vs a 4×4 via
// array (Plus pattern, 2 µm wire, 1 µm² total via area).
func fig1(a *core.Analyzer, _ options) error {
	plot := &textplot.Plot{
		Title:  "Fig 1: sigma_H along the wire beneath the via(s), 1x1 vs 4x4",
		XLabel: "x (um)",
		YLabel: "sigma_H (MPa)",
	}
	for _, n := range []int{1, 4} {
		row := 0
		if n == 4 {
			row = 1 // inner row: the black-arrow scan of the paper
		}
		res, xs, sh, err := scanProfile(a, n, cudd.Plus, row)
		if err != nil {
			return err
		}
		wx, wy, x0 := windowAroundArray(res.Params, xs, sh)
		name := fmt.Sprintf("%dx%d", n, n)
		printProfile(name, wx, wy, x0)
		sx := make([]float64, len(wx))
		sy := make([]float64, len(wy))
		for i := range wx {
			sx[i] = (wx[i] - x0) / phys.Micron
			sy[i] = wy[i] / phys.MPa
		}
		if err := plot.Add(textplot.Series{Name: name, X: sx, Y: sy}); err != nil {
			return err
		}
		fmt.Printf("# %s per-via peak sigma_T (MPa): min %.1f, max %.1f\n",
			name, res.MinPeak()/phys.MPa, res.MaxPeak()/phys.MPa)
	}
	return plot.Render(os.Stdout)
}

// fig6 reproduces Figure 6: σ_T scans for the Plus-, T- and L-shaped
// intersection patterns of a 4×4 array.
func fig6(a *core.Analyzer, _ options) error {
	plot := &textplot.Plot{
		Title:  "Fig 6: thermal stress for intersection patterns (4x4 array)",
		XLabel: "x (um)",
		YLabel: "sigma_H (MPa)",
	}
	for _, pat := range cudd.Patterns() {
		res, xs, sh, err := scanProfile(a, 4, pat, 1)
		if err != nil {
			return err
		}
		wx, wy, x0 := windowAroundArray(res.Params, xs, sh)
		printProfile(pat.String(), wx, wy, x0)
		sx := make([]float64, len(wx))
		sy := make([]float64, len(wy))
		for i := range wx {
			sx[i] = (wx[i] - x0) / phys.Micron
			sy[i] = wy[i] / phys.MPa
		}
		if err := plot.Add(textplot.Series{Name: pat.String(), X: sx, Y: sy}); err != nil {
			return err
		}
		fmt.Printf("# %s peak sigma_T = %.1f MPa\n", pat, res.MaxPeak()/phys.MPa)
	}
	return plot.Render(os.Stdout)
}

// fig7 reproduces Figure 7: 8×8 vs 4×4 via-array stress scans (same total
// via area).
func fig7(a *core.Analyzer, _ options) error {
	plot := &textplot.Plot{
		Title:  "Fig 7: sigma_H scans, 8x8 vs 4x4 via array",
		XLabel: "x (um)",
		YLabel: "sigma_H (MPa)",
	}
	for _, n := range []int{4, 8} {
		res, xs, sh, err := scanProfile(a, n, cudd.Plus, n/2-1)
		if err != nil {
			return err
		}
		wx, wy, x0 := windowAroundArray(res.Params, xs, sh)
		name := fmt.Sprintf("%dx%d", n, n)
		printProfile(name, wx, wy, x0)
		sx := make([]float64, len(wx))
		sy := make([]float64, len(wy))
		for i := range wx {
			sx[i] = (wx[i] - x0) / phys.Micron
			sy[i] = wy[i] / phys.MPa
		}
		if err := plot.Add(textplot.Series{Name: name, X: sx, Y: sy}); err != nil {
			return err
		}
		inner := res.PeakSigmaT[n/2][n/2]
		fmt.Printf("# %s: inner-via sigma_T %.1f MPa, corner-via %.1f MPa\n",
			name, inner/phys.MPa, res.PeakSigmaT[0][0]/phys.MPa)
	}
	return plot.Render(os.Stdout)
}
