package main

import (
	"fmt"
	"math"
	"os"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/phys"
	"emvia/internal/stat"
	"emvia/internal/textplot"
)

// refJ is the paper's via-array characterization current density (A/m² over
// the 1 µm² array).
const refJ = 1e10

// printCDFStats prints the percentiles the paper reads off its CDFs.
func printCDFStats(name string, samples []float64) error {
	e, err := stat.NewECDF(samples)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("%-28s n=%4d  0.3%%=%6.2fy  25%%=%6.2fy  50%%=%6.2fy  75%%=%6.2fy  99.7%%=%6.2fy\n",
		name, e.Len(),
		phys.SecondsToYears(e.Percentile(0.003)),
		phys.SecondsToYears(e.Percentile(0.25)),
		phys.SecondsToYears(e.Percentile(0.5)),
		phys.SecondsToYears(e.Percentile(0.75)),
		phys.SecondsToYears(e.Percentile(0.997)))
	return nil
}

// fig8a reproduces Figure 8(a): CDFs of the 4×4 Plus-shaped array TTF under
// failure criteria n_F ∈ {1, 2, 4, 8, 14, 15, 16}.
func fig8a(a *core.Analyzer, opt options) error {
	char, err := a.CharacterizeViaArray(cudd.Plus, 4, a.Base.WireWidth, refJ, core.ArrayOpenCircuit(), opt.trials, opt.seed)
	if err != nil {
		return err
	}
	plot := &textplot.Plot{
		Title:  "Fig 8a: CDF of 4x4 Plus array TTF vs failure criterion n_F",
		XLabel: "TTF (years)",
		YLabel: "cumulative probability",
	}
	for _, nf := range []int{1, 2, 4, 8, 14, 15, 16} {
		samples := char.Result.CriterionSamples(nf)
		name := fmt.Sprintf("%dth via", nf)
		if nf == 1 {
			name = "1st via"
		} else if nf == 2 {
			name = "2nd via"
		} else if nf == 16 {
			name = "last via"
		}
		if err := printCDFStats("fig8a "+name, samples); err != nil {
			return err
		}
		if err := plot.Add(textplot.CDFSeries(name, samples, phys.Year)); err != nil {
			return err
		}
	}
	return plot.Render(os.Stdout)
}

// fig8b reproduces Figure 8(b): CDFs for the three intersection patterns at
// the n_F = 8 criterion.
func fig8b(a *core.Analyzer, opt options) error {
	plot := &textplot.Plot{
		Title:  "Fig 8b: CDF of 4x4 array TTF per intersection pattern (n_F = 8)",
		XLabel: "TTF (years)",
		YLabel: "cumulative probability",
	}
	for i, pat := range cudd.Patterns() {
		char, err := a.CharacterizeViaArray(pat, 4, a.Base.WireWidth, refJ, core.ArrayResistance2x(), opt.trials, opt.seed+int64(i))
		if err != nil {
			return err
		}
		samples := char.Result.CriterionSamples(8)
		if err := printCDFStats("fig8b "+pat.String(), samples); err != nil {
			return err
		}
		if err := plot.Add(textplot.CDFSeries(pat.String(), samples, phys.Year)); err != nil {
			return err
		}
	}
	return plot.Render(os.Stdout)
}

// fig9 reproduces Figure 9: TTF comparison of 1×1, 4×4 and 8×8 arrays under
// the R = 2× and R = ∞ criteria.
func fig9(a *core.Analyzer, opt options) error {
	plot := &textplot.Plot{
		Title:  "Fig 9: TTF comparison, 1x1 / 4x4 / 8x8 via arrays",
		XLabel: "TTF (years)",
		YLabel: "cumulative probability",
	}
	type cfg struct {
		n      int
		factor float64
	}
	cfgs := []cfg{
		{1, math.Inf(1)},
		{4, 2}, {4, math.Inf(1)},
		{8, 2}, {8, math.Inf(1)},
	}
	for i, c := range cfgs {
		crit := core.ArrayCriterion{ResistanceFactor: c.factor}
		char, err := a.CharacterizeViaArray(cudd.Plus, c.n, a.Base.WireWidth, refJ, crit, opt.trials, opt.seed+int64(i))
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%dx%d, R=inf", c.n, c.n)
		if !math.IsInf(c.factor, 1) {
			label = fmt.Sprintf("%dx%d, R=%gx", c.n, c.n, c.factor)
		}
		if err := printCDFStats("fig9 "+label, char.Result.Samples); err != nil {
			return err
		}
		if err := plot.Add(textplot.CDFSeries(label, char.Result.Samples, phys.Year)); err != nil {
			return err
		}
	}
	return plot.Render(os.Stdout)
}
