// Command paperfigs regenerates every table and figure of the DAC'17 paper
// "Incorporating the Role of Stress on Electromigration in Power Grids with
// Via Arrays" from this repository's implementation.
//
// Usage:
//
//	paperfigs [-fig all|t1|1|6|7|8a|8b|9|10|t2] [-trials N] [-gridtrials N] [-fast] [-j N] [-stresscache DIR]
//
// Output is printed as labelled data series (and ASCII plots) whose shape is
// directly comparable to the paper's plots; EXPERIMENTS.md records a full
// run against the paper's reported values.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"emvia/internal/cliobs"
	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/mc"
	"emvia/internal/phys"
)

type options struct {
	fig         string
	trials      int
	gridTrials  int
	fast        bool
	seed        int64
	workers     int
	stressCache string
	// engine is the resolved -engine value (mc or both); the grid
	// experiments pass it through to core.GridAnalysis, so "both" runs the
	// steady screen first and prunes every grid Monte Carlo to the mortal
	// subset.
	engine string
}

func main() {
	var opt options
	flag.StringVar(&opt.fig, "fig", "all", "experiment to run: all, t1, 1, 6, 7, 8a, 8b, 9, 10, t2, s1-s6 (supplementary)")
	flag.IntVar(&opt.trials, "trials", 500, "Monte-Carlo trials for via-array characterization")
	flag.IntVar(&opt.gridTrials, "gridtrials", 500, "Monte-Carlo trials for power-grid analysis")
	flag.BoolVar(&opt.fast, "fast", false, "coarse FEA meshes and smaller grids (quick smoke run)")
	flag.Int64Var(&opt.seed, "seed", 2017, "base random seed")
	flag.IntVar(&opt.workers, "j", 0, "FEA worker goroutines, 0 = GOMAXPROCS (results are bit-identical for any value)")
	flag.StringVar(&opt.stressCache, "stresscache", "", `persistent stress cache: a directory, or "auto" for the default location (EMVIA_STRESS_CACHE or the user cache dir)`)
	var obs cliobs.Config
	obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	finishObs, err := cliobs.Setup(obs, "paperfigs", flag.CommandLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}
	opt.engine, err = mc.ParseEngine(obs.Engine) // Setup already validated it
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}
	if opt.engine == mc.EngineSteady {
		fmt.Fprintln(os.Stderr, "paperfigs: -engine=steady produces no TTF distributions, so the paper's figures cannot be generated from it; use -engine=mc or -engine=both here, or `emgrid analyze -engine=steady` for the standalone classification")
		os.Exit(2)
	}

	runners := map[string]func(*core.Analyzer, options) error{
		"t1": figTable1,
		"1":  fig1,
		"6":  fig6,
		"7":  fig7,
		"8a": fig8a,
		"8b": fig8b,
		"9":  fig9,
		"10": fig10,
		"t2": figTable2,
		"s1": figS1,
		"s2": figS2,
		"s3": figS3,
		"s4": figS4,
		"s5": figS5,
		"s6": figS6,
	}
	order := []string{"t1", "1", "6", "7", "8a", "8b", "9", "10", "t2", "s1", "s2", "s3", "s4", "s5", "s6"}

	var selected []string
	if opt.fig == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(opt.fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "paperfigs: unknown experiment %q (want one of %s)\n", f, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	analyzer := newAnalyzer(opt)
	for _, f := range selected {
		start := time.Now()
		fmt.Printf("==== experiment %s ====\n", f)
		if err := runners[f](analyzer, opt); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: experiment %s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Printf("---- experiment %s done in %v ----\n\n", f, time.Since(start).Round(time.Millisecond))
	}
	if err := finishObs(); err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}
}

// newAnalyzer builds the shared technology analyzer. The default resolution
// puts two elements across each via so inter-via stress structure resolves;
// -fast falls back to one element per via with tighter margins.
func newAnalyzer(opt options) *core.Analyzer {
	a := core.NewAnalyzer()
	if opt.fast {
		a.Base.Margin = 1.0 * phys.Micron
		a.Base.SubstrateThickness = 0.8 * phys.Micron
		a.Base.StepOutside = 0.5 * phys.Micron
		a.Base.StepZBulk = 1.0 * phys.Micron
	}
	a.FEA.Workers = opt.workers
	if opt.stressCache != "" {
		dir := opt.stressCache
		if dir == "auto" {
			dir = "" // core resolves the env/user-cache default
		}
		if err := a.EnableStressCache(dir); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(1)
		}
	}
	return a
}

// fineParams returns structure parameters with two elements across each via
// and gap, the resolution the stress-profile figures need.
func fineParams(a *core.Analyzer, n int, pattern cudd.Pattern) cudd.Params {
	p := a.Base
	p.ArrayN = n
	p.Pattern = pattern
	p.StepArray = 0.5 * math.Sqrt(p.ViaArea) / float64(n)
	return p
}
