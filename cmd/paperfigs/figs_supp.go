package main

import (
	"fmt"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/thermal"
)

// figS1 prints the stress-aware current-density limits: the j_max each
// (pattern, configuration) family can carry for a 10-year median via
// lifetime. The foundry's traditional screen uses one number for all of
// them; the spread of this table is the paper's point.
func figS1(a *core.Analyzer, _ options) error {
	target := phys.YearsToSeconds(10)
	fmt.Println("S1: stress-aware j_max (A/m^2) for a 10-year median via lifetime")
	fmt.Printf("%-14s %12s %12s %12s\n", "pattern", "1x1", "4x4 (worst)", "8x8 (worst)")
	for _, pat := range cudd.Patterns() {
		row := []string{}
		for _, n := range []int{1, 4, 8} {
			sigma, err := a.StressFor(pat, a.Base.LayerPair, n, a.Base.WireWidth)
			if err != nil {
				return err
			}
			worst := sigma[0][0]
			for _, r := range sigma {
				for _, v := range r {
					if v > worst {
						worst = v
					}
				}
			}
			row = append(row, fmt.Sprintf("%.3g", a.EM.JMaxForLifetime(worst, target)))
		}
		fmt.Printf("%-14s %12s %12s %12s\n", pat, row[0], row[1], row[2])
	}
	return nil
}

// figS2 prints the EM hotspot report of the PG1 analogue: the via arrays
// that most often precipitate grid failure.
func figS2(a *core.Analyzer, opt options) error {
	g, err := buildGrid(pdn.PG1Spec(), opt.fast)
	if err != nil {
		return err
	}
	models, err := a.ViaArrayModels(4, g.Spec.WireWidth, refJ, core.ArrayOpenCircuit(), opt.trials, opt.seed)
	if err != nil {
		return err
	}
	res, err := pdn.AnalyzeTTF(pdn.TTFConfig{
		Grid: g, Models: models, Criterion: pdn.IRDrop, IRDropFrac: irCriterion,
	}, opt.gridTrials, opt.seed+5)
	if err != nil {
		return err
	}
	rep, err := pdn.CriticalityReport(g, res, 10)
	if err != nil {
		return err
	}
	fmt.Println("S2: EM hotspots of PG1 (IR-drop criterion, 4x4 arrays)")
	fmt.Printf("%-10s %-14s %14s %14s\n", "array", "pattern", "first-failures", "involvements")
	for _, e := range rep {
		fmt.Printf("(%3d,%3d)  %-14s %14d %14d\n", e.Via.IX, e.Via.IY, e.Via.Pattern, e.FirstFailures, e.Involvements)
	}
	return nil
}

// figS3 prints the Blech wire-immortality screen that backs the paper's
// assumption of via-array-dominated failure.
func figS3(a *core.Analyzer, opt options) error {
	fmt.Println("S3: Blech wire-immortality screen (sigma_crit = sigma_C median - Plus sigma_T)")
	sc, err := a.EM.SigmaCDist()
	if err != nil {
		return err
	}
	sigma, err := a.StressFor(cudd.Plus, a.Base.LayerPair, 4, a.Base.WireWidth)
	if err != nil {
		return err
	}
	crit := sc.Median() - sigma[0][0]
	for _, mk := range []func() pdn.GridSpec{pdn.PG1Spec, pdn.PG2Spec, pdn.PG5Spec} {
		g, err := buildGrid(mk(), opt.fast)
		if err != nil {
			return err
		}
		rep, err := g.WireBlechScreen(a.EM, crit)
		if err != nil {
			return err
		}
		fmt.Printf("%-5s %5d segments, %4d mortal (%.1f%% immortal), worst jL/threshold = %.2f\n",
			g.Spec.Name, rep.Segments, rep.Mortal, 100*rep.ImmortalFraction(), rep.WorstJL/rep.Threshold)
	}
	return nil
}

// figS4 compares the uniform-105 °C assumption with the thermally-aware
// analysis on the PG1 analogue.
func figS4(a *core.Analyzer, opt options) error {
	g, err := buildGrid(pdn.PG1Spec(), opt.fast)
	if err != nil {
		return err
	}
	analysis := core.GridAnalysis{
		Grid: g, ArrayN: 4, ArrayCriterion: core.ArrayOpenCircuit(),
		SystemCriterion: pdn.IRDrop, IRDropFrac: irCriterion,
		CharTrials: opt.trials, GridTrials: opt.gridTrials, Seed: opt.seed + 9,
		Engine: opt.engine,
	}
	uniform, err := a.AnalyzeGrid(analysis)
	if err != nil {
		return err
	}
	rep, err := a.AnalyzeGridThermal(analysis, thermal.Config{})
	if err != nil {
		return err
	}
	fmt.Println("S4: thermal-aware vs uniform-105C analysis, PG1, 4x4, IR-drop/R=inf")
	fmt.Printf("uniform 105C:  median %6.2f y, worst-case %6.2f y\n", uniform.MedianYears(), uniform.WorstCaseYears())
	fmt.Printf("thermal-aware: median %6.2f y, worst-case %6.2f y (die mean %.1f C, max %.1f C)\n",
		rep.Grid.MedianYears(), rep.Grid.WorstCaseYears(), rep.Map.MeanTemp(), rep.Map.MaxTemp())
	lo, hi, err := rep.Grid.PercentileCIYears(0.003, 0.95, opt.seed)
	if err != nil {
		return err
	}
	fmt.Printf("thermal-aware worst-case 95%% CI: [%.2f, %.2f] years\n", lo, hi)
	return nil
}

// figS5 demonstrates the via-spacing design rule (the paper's future work):
// equal-area vs rule-constrained 4×4 arrays.
func figS5(a *core.Analyzer, _ options) error {
	fmt.Println("S5: minimum via-spacing rule (paper future work), Plus 4x4")
	for _, sp := range []float64{0, 0.3 * phys.Micron} {
		p := a.Base
		p.ArrayN = 4
		p.Pattern = cudd.Plus
		p.ViaSpacing = sp
		res, err := cudd.Characterize(p, a.FEA)
		if err != nil {
			return err
		}
		v, err := p.Validate()
		if err != nil {
			return err
		}
		label := "equal-area (gap = side)"
		if sp > 0 {
			label = fmt.Sprintf("rule %.2g um", sp/phys.Micron)
		}
		fmt.Printf("%-24s extent %.2f um, sigma_T %6.1f..%6.1f MPa\n",
			label, v.ArrayExtent()/phys.Micron, res.MinPeak()/phys.MPa, res.MaxPeak()/phys.MPa)
	}
	// The rule that no longer fits is rejected, the design check a router
	// would rely on.
	p := a.Base
	p.ArrayN = 8
	p.ViaSpacing = 0.2 * phys.Micron
	if _, err := p.Validate(); err != nil {
		fmt.Printf("8x8 with 0.2 um rule: %v\n", err)
	}
	return nil
}

// figS6 simulates the emdist growth-phase comparison: Cu slit voids vs
// Al-era spanning voids (paper §2.1).
func figS6(a *core.Analyzer, _ options) error {
	em := a.EM
	j := refJ
	fmt.Println("S6: nucleation vs growth phases (paper sec 2.1)")
	tn := em.MedianTTF(230e6, j)
	fmt.Printf("nucleation time (median, sigma_T 230 MPa): %6.2f y\n", phys.SecondsToYears(tn))
	for _, c := range []struct {
		label string
		size  float64
	}{
		{"Cu DD slit void (3 nm)", 3 * phys.Nanometre},
		{"Al spanning void (250 nm)", 250 * phys.Nanometre},
	} {
		tg := em.GrowthTime(j, c.size)
		fmt.Printf("%-28s growth %8.3f y  -> TTF %6.2f y (growth share %.0f%%)\n",
			c.label, phys.SecondsToYears(tg), phys.SecondsToYears(tn+tg), 100*tg/(tn+tg))
	}
	return nil
}
