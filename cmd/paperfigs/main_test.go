package main

import (
	"math"
	"testing"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/phys"
)

func TestWindowAroundArrayClipsAndRebases(t *testing.T) {
	p := cudd.DefaultParams() // 4×4, extent 1.75 µm, domain centre at 3.6 µm
	xs := make([]float64, 100)
	sh := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) * 0.072 * phys.Micron // spans 0..7.13 µm
		sh[i] = 200e6
	}
	wx, wy, x0 := windowAroundArray(p, xs, sh)
	if len(wx) == 0 || len(wx) != len(wy) {
		t.Fatalf("window lengths %d/%d", len(wx), len(wy))
	}
	v, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	cx := v.WireWidth/2 + v.Margin
	half := v.ArrayExtent()/2 + 0.5*phys.Micron
	for _, x := range wx {
		if x < cx-half-1e-12 || x > cx+half+1e-12 {
			t.Fatalf("window sample %g outside [%g, %g]", x, cx-half, cx+half)
		}
	}
	if math.Abs(x0-(cx-half)) > 1e-12 {
		t.Errorf("x0 = %g, want window start %g", x0, cx-half)
	}
	// The rebased window spans roughly the paper's 0..(extent+1µm) axis.
	span := (wx[len(wx)-1] - x0) / phys.Micron
	if span < 2 || span > 3 {
		t.Errorf("window span = %g µm, want ≈ 2.75", span)
	}
}

func TestFineParamsResolution(t *testing.T) {
	a := core.NewAnalyzer()
	p := fineParams(a, 4, cudd.TShape)
	if p.Pattern != cudd.TShape || p.ArrayN != 4 {
		t.Errorf("fineParams lost configuration: %+v", p)
	}
	// Two elements per via: StepArray = side/2.
	wantStep := 0.5 * math.Sqrt(p.ViaArea) / 4
	if math.Abs(p.StepArray-wantStep) > 1e-15 {
		t.Errorf("StepArray = %g, want %g", p.StepArray, wantStep)
	}
}

func TestCombosCoverPaperMatrix(t *testing.T) {
	cs := combos()
	if len(cs) != 4 {
		t.Fatalf("combos = %d, want 4", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[comboName(c)] = true
	}
	if len(names) != 4 {
		t.Errorf("combo names not distinct: %v", names)
	}
}

func TestPrintCDFStatsRejectsEmpty(t *testing.T) {
	if err := printCDFStats("x", nil); err == nil {
		t.Error("accepted empty samples")
	}
	if err := printCDFStats("x", []float64{1, 2, 3}); err != nil {
		t.Errorf("rejected valid samples: %v", err)
	}
}
