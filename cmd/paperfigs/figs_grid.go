package main

import (
	"fmt"
	"os"

	"emvia/internal/core"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/textplot"
)

// gridTuning matches the paper's benchmark preparation: nominal worst IR
// drop well inside the 10 % criterion, busiest via array at the
// characterization reference current.
const (
	nominalIRFrac = 0.065
	refViaAmps    = refJ * 1e-12 // reference current density × 1 µm² array
	irCriterion   = 0.10
)

// buildGrid generates and tunes a benchmark-analogue grid.
func buildGrid(spec pdn.GridSpec, fast bool) (*pdn.Grid, error) {
	if fast {
		spec.NX /= 2
		spec.NY /= 2
		if spec.PadPeriod > spec.NX {
			spec.PadPeriod = spec.NX
		}
	}
	g, err := pdn.Generate(spec)
	if err != nil {
		return nil, err
	}
	if err := g.Tune(nominalIRFrac, refViaAmps); err != nil {
		return nil, err
	}
	return g, nil
}

// criterionCombos enumerates the four (system, array) criterion pairs of
// Fig 10 and Table 2.
type combo struct {
	sys   pdn.Criterion
	array core.ArrayCriterion
}

func combos() []combo {
	return []combo{
		{pdn.WeakestLink, core.ArrayWeakestLink()},
		{pdn.WeakestLink, core.ArrayOpenCircuit()},
		{pdn.IRDrop, core.ArrayWeakestLink()},
		{pdn.IRDrop, core.ArrayOpenCircuit()},
	}
}

func comboName(c combo) string {
	return fmt.Sprintf("System: %s, via array: %s", c.sys, c.array)
}

// fig10 reproduces Figure 10: grid TTF CDFs for PG1 with 4×4 and 8×8 via
// arrays under the four criterion combinations.
func fig10(a *core.Analyzer, opt options) error {
	g, err := buildGrid(pdn.PG1Spec(), opt.fast)
	if err != nil {
		return err
	}
	for _, n := range []int{4, 8} {
		plot := &textplot.Plot{
			Title:  fmt.Sprintf("Fig 10: TTF for PG1 with %dx%d via arrays", n, n),
			XLabel: "TTF (years)",
			YLabel: "percentile",
		}
		for i, c := range combos() {
			rep, err := a.AnalyzeGrid(core.GridAnalysis{
				Grid:            g,
				ArrayN:          n,
				ArrayCriterion:  c.array,
				SystemCriterion: c.sys,
				IRDropFrac:      irCriterion,
				CharTrials:      opt.trials,
				GridTrials:      opt.gridTrials,
				Seed:            opt.seed + int64(100*n+i),
				Engine:          opt.engine,
			})
			if err != nil {
				return fmt.Errorf("fig10 %dx%d %s: %w", n, n, comboName(c), err)
			}
			name := comboName(c)
			if rep.Screen != nil {
				fmt.Printf("fig10 %dx%d %s: steady screen pruned MC to %d/%d mortal via arrays\n",
					n, n, name, rep.Screen.MortalVias, rep.Screen.Vias)
			}
			if err := printCDFStats(fmt.Sprintf("fig10 %dx%d %s", n, n, name), rep.TTF.Values()); err != nil {
				return err
			}
			if err := plot.Add(textplot.CDFSeries(name, rep.TTF.Values(), phys.Year)); err != nil {
				return err
			}
		}
		if err := plot.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// figTable2 reproduces Table 2: worst-case (0.3 %ile) TTF for the PG1, PG2
// and PG5 benchmark analogues across all criterion combinations and via
// configurations.
func figTable2(a *core.Analyzer, opt options) error {
	specs := []pdn.GridSpec{pdn.PG1Spec(), pdn.PG2Spec(), pdn.PG5Spec()}
	for _, n := range []int{4, 8} {
		fmt.Printf("Worst-case TTF (years) when %dx%d via array used\n", n, n)
		fmt.Printf("%-6s %28s %28s\n", "", "Weakest-link system", "Performance (10% IR-drop)")
		fmt.Printf("%-6s %13s %14s %13s %14s\n", "PG", "WL array", "R=inf array", "WL array", "R=inf array")
		for _, spec := range specs {
			g, err := buildGrid(spec, opt.fast)
			if err != nil {
				return fmt.Errorf("table2 %s: %w", spec.Name, err)
			}
			row := []string{}
			for _, c := range combos() {
				rep, err := a.AnalyzeGrid(core.GridAnalysis{
					Grid:            g,
					ArrayN:          n,
					ArrayCriterion:  c.array,
					SystemCriterion: c.sys,
					IRDropFrac:      irCriterion,
					CharTrials:      opt.trials,
					GridTrials:      opt.gridTrials,
					Seed:            opt.seed + int64(10*n),
					Engine:          opt.engine,
				})
				if err != nil {
					return fmt.Errorf("table2 %s %dx%d %s: %w", spec.Name, n, n, comboName(c), err)
				}
				row = append(row, fmt.Sprintf("%.1f", rep.WorstCaseYears()))
			}
			fmt.Printf("%-6s %13s %14s %13s %14s\n", spec.Name, row[0], row[1], row[2], row[3])
		}
		fmt.Println()
	}
	return nil
}
