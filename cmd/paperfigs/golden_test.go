package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"emvia/internal/core"
	"emvia/internal/cudd"
	"emvia/internal/pdn"
	"emvia/internal/phys"
	"emvia/internal/trace"
)

// -update regenerates testdata/golden.json from the current implementation:
//
//	go test ./cmd/paperfigs -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata/golden.json with freshly computed metrics")

const goldenPath = "testdata/golden.json"

// goldenRelTol is the comparison tolerance. The pipeline is deterministic on
// a given platform (fixed seeds, fixed-order reductions), but a tiny relative
// tolerance keeps the test robust to FMA-contraction differences across
// architectures while still catching any real modelling or solver drift,
// which moves these metrics at the 1e-3 level or more.
const goldenRelTol = 1e-9

// goldenOptions is the reduced-scale configuration: coarse FEA meshes,
// halved grids and small trial counts, so the whole suite stays inside a
// normal `go test` budget while exercising the same code paths as the
// full paper run.
func goldenOptions() options {
	return options{trials: 80, gridTrials: 50, fast: true, seed: 2017}
}

// computeGoldenMetrics evaluates the paper-reproduction metrics of
// Figs 1/6/7/10 and Table 2 at reduced scale with fixed seeds.
func computeGoldenMetrics(t *testing.T) map[string]float64 {
	t.Helper()
	opt := goldenOptions()
	a := newAnalyzer(opt)
	m := make(map[string]float64)

	stressMetrics := func(prefix string, n int, pattern cudd.Pattern, row int) *cudd.Result {
		res, xs, sh, err := scanProfile(a, n, pattern, row)
		if err != nil {
			t.Fatalf("%s: %v", prefix, err)
		}
		_, wy, _ := windowAroundArray(res.Params, xs, sh)
		sum := 0.0
		for _, v := range wy {
			sum += v / phys.MPa
		}
		m[prefix+".scan_sum_mpa"] = sum
		m[prefix+".min_peak_mpa"] = res.MinPeak() / phys.MPa
		m[prefix+".max_peak_mpa"] = res.MaxPeak() / phys.MPa
		return res
	}

	// Fig 1: 1×1 vs 4×4 Plus-pattern stress profiles.
	stressMetrics("fig1.1x1", 1, cudd.Plus, 0)
	stressMetrics("fig1.4x4", 4, cudd.Plus, 1)

	// Fig 6: the three intersection patterns at 4×4.
	for _, pat := range cudd.Patterns() {
		stressMetrics("fig6."+pat.String(), 4, pat, 1)
	}

	// Fig 7: 4×4 vs 8×8, inner- and corner-via peaks.
	for _, n := range []int{4, 8} {
		prefix := fmt.Sprintf("fig7.%dx%d", n, n)
		res := stressMetrics(prefix, n, cudd.Plus, n/2-1)
		m[prefix+".inner_mpa"] = res.PeakSigmaT[n/2][n/2] / phys.MPa
		m[prefix+".corner_mpa"] = res.PeakSigmaT[0][0] / phys.MPa
	}

	// Fig 10 / Table 2: PG1 grid TTF metrics at 4×4 across the criterion
	// combinations (Table 2's PG1 row; Fig 10's CDF summarized by its
	// worst-case and median percentiles).
	g, err := buildGrid(pdn.PG1Spec(), opt.fast)
	if err != nil {
		t.Fatalf("buildGrid: %v", err)
	}
	comboKeys := []string{"wl_wl", "wl_rinf", "ir_wl", "ir_rinf"}
	for i, c := range combos() {
		rep, err := a.AnalyzeGrid(core.GridAnalysis{
			Grid:            g,
			ArrayN:          4,
			ArrayCriterion:  c.array,
			SystemCriterion: c.sys,
			IRDropFrac:      irCriterion,
			CharTrials:      opt.trials,
			GridTrials:      opt.gridTrials,
			Seed:            opt.seed + int64(400+i),
		})
		if err != nil {
			t.Fatalf("grid analysis %s: %v", comboName(c), err)
		}
		m["grid.pg1.4x4."+comboKeys[i]+".worst_years"] = rep.WorstCaseYears()
		m["grid.pg1.4x4."+comboKeys[i]+".median_years"] = rep.MedianYears()
	}
	return m
}

// TestGoldenFigures pins the paper-reproduction metrics against checked-in
// golden values; any drift in the FEA, EM model, Monte-Carlo engine or their
// seeds fails this test. Regenerate after an intentional change with
// `go test ./cmd/paperfigs -run Golden -update`.
func TestGoldenFigures(t *testing.T) {
	got := computeGoldenMetrics(t)

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden metrics to %s", len(got), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (run `go test ./cmd/paperfigs -run Golden -update` to create them): %v", err)
	}
	var want map[string]float64
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("decoding %s: %v", goldenPath, err)
	}

	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("metric %s missing from current run", k)
			continue
		}
		if !withinRelTol(g, w, goldenRelTol) {
			t.Errorf("metric %s drifted: got %.17g, want %.17g (rel err %.3g)",
				k, g, w, relErr(g, w))
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("metric %s computed but absent from goldens (regenerate with -update)", k)
		}
	}
}

// TestGoldenFiguresWithTracing recomputes every golden metric with the
// structured tracer installed and requires bit-exact equality with an
// untraced run: tracing must observe the cascade, never perturb it. When
// EMVIA_GOLDEN_TRACE names a directory, the JSONL trace is written there
// (CI uploads it as an artifact on failure) instead of being discarded.
func TestGoldenFiguresWithTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("computes the golden metrics twice")
	}
	plain := computeGoldenMetrics(t)

	var sink io.Writer = io.Discard
	if dir := os.Getenv("EMVIA_GOLDEN_TRACE"); dir != "" {
		f, err := os.Create(filepath.Join(dir, "golden.trace.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sink = f
		t.Logf("writing golden trace to %s", f.Name())
	}
	tr := trace.New(trace.Options{Sinks: []trace.Sink{trace.NewJSONLSink(sink)}})
	trace.SetDefault(tr)
	defer trace.SetDefault(nil)
	traced := computeGoldenMetrics(t)
	trace.SetDefault(nil)
	if err := tr.Close(); err != nil {
		t.Fatalf("closing tracer: %v", err)
	}

	for k, w := range plain {
		g, ok := traced[k]
		if !ok {
			t.Errorf("metric %s missing from traced run", k)
			continue
		}
		if g != w {
			t.Errorf("metric %s perturbed by tracing: %.17g, want %.17g", k, g, w)
		}
	}
	if len(traced) != len(plain) {
		t.Errorf("traced run computed %d metrics, untraced %d", len(traced), len(plain))
	}
}

func withinRelTol(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return relErr(a, b) <= tol
}

func relErr(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}
