package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"emvia/internal/trace"
)

// syntheticTrace emits a two-trial run plus a span through the real tracer so
// the test exercises the exact JSONL shape emtrace consumes in the field.
func syntheticTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(trace.Options{Sinks: []trace.Sink{trace.NewJSONLSink(&buf)}})
	done := tr.Span("fem.cg")
	done()
	run := tr.BeginRun("array:Plus-shaped:4x4", 2)
	t0 := run.Trial(0)
	t0.Begin(16)
	t0.Fail(1e8, 3, "via(3,0)")
	t0.SpecViolation(1.5e8, 1)
	t0.Fail(2e8, 5, "via(1,1)")
	t0.End(2e8, 2)
	t1 := run.Trial(1)
	t1.Begin(16)
	t1.Fail(3e8, 0, "Plus-shaped(0,0)")
	t1.End(math.Inf(1), 1)
	run.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestReadTraceStats(t *testing.T) {
	var runs []*runStats
	byKey := make(map[runKey]*runStats)
	var spans spanStats
	if err := readTrace(bytes.NewReader(syntheticTrace(t)), byKey, &runs, &spans); err != nil {
		t.Fatalf("readTrace: %v", err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	rs := runs[0]
	if rs.key.name != "array:Plus-shaped:4x4" {
		t.Errorf("run name = %q", rs.key.name)
	}
	if len(rs.trials) != 2 {
		t.Errorf("trials = %d, want 2", len(rs.trials))
	}
	if rs.components != 16 {
		t.Errorf("components = %d, want 16", rs.components)
	}
	if rs.lengths[2] != 1 || rs.lengths[1] != 1 {
		t.Errorf("cascade lengths = %v, want {1:1 2:1}", rs.lengths)
	}
	if rs.firstCounts["via"] != 1 || rs.firstCounts["Plus-shaped"] != 1 {
		t.Errorf("first-fail families = %v", rs.firstCounts)
	}
	if rs.orderCnt["via"] != 2 || rs.orderSum["via"] != 3 { // positions 1 and 2
		t.Errorf("via order stats = %d/%v", rs.orderCnt["via"], rs.orderSum["via"])
	}
	if rs.infTTF != 1 || len(rs.ttfs) != 1 || rs.ttfs[0] != 2e8 {
		t.Errorf("TTFs = %v, inf = %d", rs.ttfs, rs.infTTF)
	}
	if len(rs.firstTimes) != 1 || rs.firstTimes[0] != 1e8 || rs.specTimes[0] != 1.5e8 {
		t.Errorf("spec scatter points = %v vs %v", rs.firstTimes, rs.specTimes)
	}
	if spans.count != 1 || spans.byLbl["fem.cg"].n != 1 {
		t.Errorf("spans = %+v", spans)
	}
}

func TestReportRenders(t *testing.T) {
	var runs []*runStats
	byKey := make(map[runKey]*runStats)
	var spans spanStats
	if err := readTrace(bytes.NewReader(syntheticTrace(t)), byKey, &runs, &spans); err != nil {
		t.Fatalf("readTrace: %v", err)
	}
	var out strings.Builder
	for _, rs := range runs {
		rs.report(&out, 8, true)
	}
	spans.report(&out)
	got := out.String()
	for _, want := range []string{
		"run array:Plus-shaped:4x4",
		"2 trials",
		"cascade length",
		"failure order by component family",
		"Plus-shaped",
		"wall-clock stage spans",
		"fem.cg",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q in:\n%s", want, got)
		}
	}
}

func TestFamily(t *testing.T) {
	cases := map[string]string{
		"via(3,0)":          "via",
		"Plus-shaped(2,1)":  "Plus-shaped",
		"":                  "(unlabeled)",
		"bare":              "bare",
		"(weird)":           "(weird)",
		"T-shaped(0,0)":     "T-shaped",
		"Stacked-via(1,1)":  "Stacked-via",
		"Grid-like(10,10)":  "Grid-like",
		"Plus-shaped(0,15)": "Plus-shaped",
	}
	for in, want := range cases {
		if got := family(in); got != want {
			t.Errorf("family(%q) = %q, want %q", in, got, want)
		}
	}
}
