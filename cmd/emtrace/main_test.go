package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emvia/internal/serve"
	"emvia/internal/trace"
)

// syntheticTrace emits a two-trial run plus a span through the real tracer so
// the test exercises the exact JSONL shape emtrace consumes in the field.
func syntheticTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(trace.Options{Sinks: []trace.Sink{trace.NewJSONLSink(&buf)}})
	done := tr.Span("fem.cg")
	done()
	run := tr.BeginRun("array:Plus-shaped:4x4", 2)
	t0 := run.Trial(0)
	t0.Begin(16)
	t0.Fail(1e8, 3, "via(3,0)")
	t0.SpecViolation(1.5e8, 1)
	t0.Fail(2e8, 5, "via(1,1)")
	t0.End(2e8, 2)
	t1 := run.Trial(1)
	t1.Begin(16)
	t1.Fail(3e8, 0, "Plus-shaped(0,0)")
	t1.End(math.Inf(1), 1)
	run.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestReadTraceStats(t *testing.T) {
	var runs []*runStats
	byKey := make(map[runKey]*runStats)
	var spans spanStats
	if err := readTrace(bytes.NewReader(syntheticTrace(t)), byKey, &runs, &spans); err != nil {
		t.Fatalf("readTrace: %v", err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	rs := runs[0]
	if rs.key.name != "array:Plus-shaped:4x4" {
		t.Errorf("run name = %q", rs.key.name)
	}
	if len(rs.trials) != 2 {
		t.Errorf("trials = %d, want 2", len(rs.trials))
	}
	if rs.components != 16 {
		t.Errorf("components = %d, want 16", rs.components)
	}
	if rs.lengths[2] != 1 || rs.lengths[1] != 1 {
		t.Errorf("cascade lengths = %v, want {1:1 2:1}", rs.lengths)
	}
	if rs.firstCounts["via"] != 1 || rs.firstCounts["Plus-shaped"] != 1 {
		t.Errorf("first-fail families = %v", rs.firstCounts)
	}
	if rs.orderCnt["via"] != 2 || rs.orderSum["via"] != 3 { // positions 1 and 2
		t.Errorf("via order stats = %d/%v", rs.orderCnt["via"], rs.orderSum["via"])
	}
	if rs.infTTF != 1 || len(rs.ttfs) != 1 || rs.ttfs[0] != 2e8 {
		t.Errorf("TTFs = %v, inf = %d", rs.ttfs, rs.infTTF)
	}
	if len(rs.firstTimes) != 1 || rs.firstTimes[0] != 1e8 || rs.specTimes[0] != 1.5e8 {
		t.Errorf("spec scatter points = %v vs %v", rs.firstTimes, rs.specTimes)
	}
	if spans.count != 1 || spans.byLbl["fem.cg"].n != 1 {
		t.Errorf("spans = %+v", spans)
	}
}

func TestReportRenders(t *testing.T) {
	var runs []*runStats
	byKey := make(map[runKey]*runStats)
	var spans spanStats
	if err := readTrace(bytes.NewReader(syntheticTrace(t)), byKey, &runs, &spans); err != nil {
		t.Fatalf("readTrace: %v", err)
	}
	var out strings.Builder
	for _, rs := range runs {
		rs.report(&out, 8, true)
	}
	spans.report(&out)
	got := out.String()
	for _, want := range []string{
		"run array:Plus-shaped:4x4",
		"2 trials",
		"cascade length",
		"failure order by component family",
		"Plus-shaped",
		"wall-clock stage spans",
		"fem.cg",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q in:\n%s", want, got)
		}
	}
}

// TestRunExitCodes pins the CLI contract: unknown subcommands and bad flags
// are loud usage errors (exit 2), not silent empty reports.
func TestRunExitCodes(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(tracePath, syntheticTrace(t), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown subcommand", []string{"bogus-subcommand"}, 2},
		{"unknown flag", []string{"-definitely-not-a-flag", tracePath}, 2},
		{"ledger no args", []string{"ledger"}, 2},
		{"ledger unknown flag", []string{"ledger", "-nope"}, 2},
		{"missing trace file treated as subcommand", []string{"no/such/file.jsonl"}, 2},
		{"ledger missing file", []string{"ledger", "no/such/ledger.jsonl"}, 1},
		{"help", []string{"help"}, 0},
		{"trace report", []string{"-noplot", tracePath}, 0},
	}
	for _, tc := range cases {
		var stdout, stderr strings.Builder
		if got := run(tc.args, &stdout, &stderr); got != tc.want {
			t.Errorf("%s: exit = %d, want %d (stderr: %s)", tc.name, got, tc.want, stderr.String())
		}
		if tc.want == 2 && !strings.Contains(strings.ToLower(stderr.String()), "usage") {
			t.Errorf("%s: usage not printed on stderr: %s", tc.name, stderr.String())
		}
	}
}

// syntheticLedger writes a small ledger through the real serve.Ledger so the
// subcommand test exercises the exact JSONL shape emserve produces.
func syntheticLedger(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l := serve.NewLedger(path)
	recs := []serve.LedgerRecord{
		{
			Schema: serve.LedgerSchemaVersion, Time: "2026-08-08T10:00:00Z",
			ID: "job-1", ContentHash: "aaa", Engine: "mc", Outcome: "done",
			Attempts: 1, TrialsDone: 64, TrialsTotal: 64,
			QueueWaitSeconds: 0.01, WallSeconds: 1.5,
			Shards: 4, ShardsReissued: 1, MergeSeconds: 0.02,
			StageSeconds: map[string]float64{"mc": 1.2, "factorize": 0.2, "manifest": 0.05, "merge": 0.02},
		},
		{
			Schema: serve.LedgerSchemaVersion, Time: "2026-08-08T10:00:05Z",
			ID: "job-2", ContentHash: "bbb", Engine: "mc", Outcome: "failed",
			Error: "boom", Attempts: 2, Retries: 1,
			QueueWaitSeconds: 0.02, WallSeconds: 0.4,
			StageSeconds: map[string]float64{"resolve": 0.1},
		},
		{
			Schema: serve.LedgerSchemaVersion, Time: "2026-08-08T10:00:06Z",
			ID: "job-3", ContentHash: "aaa", Engine: "mc", Outcome: "done",
			Dedup: "result-cache", TrialsDone: 64, TrialsTotal: 64,
		},
	}
	for i := range recs {
		if err := l.Append(&recs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return path
}

// TestLedgerSubcommand runs `emtrace ledger` over a synthetic ledger and
// checks the report covers outcomes, dedup rate, throughput, latency
// percentiles and the stage breakdown.
func TestLedgerSubcommand(t *testing.T) {
	path := syntheticLedger(t)
	var stdout, stderr strings.Builder
	if got := run([]string{"ledger", path}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"run ledger: 3 records",
		"done=2",
		"failed=1",
		"dedup rate: 1/3",
		"trials: 128/128 completed",
		"sharding: 1 jobs sharded, 4 shards/job, 1 reissued, merge 0.02s total",
		"throughput: 3 jobs",
		"queue-wait",
		"wall-clock",
		"stage breakdown",
		"mc",
		"factorize",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger report missing %q in:\n%s", want, out)
		}
	}
}

// TestLedgerSubcommandCorruptLine: a torn trailing line is reported as
// skipped, and the intact records still render.
func TestLedgerSubcommandCorruptLine(t *testing.T) {
	path := syntheticLedger(t)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"torn`) //nolint:errcheck
	f.Close()
	var stdout, stderr strings.Builder
	if got := run([]string{"ledger", path}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "1 corrupt lines skipped") {
		t.Errorf("skipped count missing in:\n%s", stdout.String())
	}
}

func TestFamily(t *testing.T) {
	cases := map[string]string{
		"via(3,0)":          "via",
		"Plus-shaped(2,1)":  "Plus-shaped",
		"":                  "(unlabeled)",
		"bare":              "bare",
		"(weird)":           "(weird)",
		"T-shaped(0,0)":     "T-shaped",
		"Stacked-via(1,1)":  "Stacked-via",
		"Grid-like(10,10)":  "Grid-like",
		"Plus-shaped(0,15)": "Plus-shaped",
	}
	for in, want := range cases {
		if got := family(in); got != want {
			t.Errorf("family(%q) = %q, want %q", in, got, want)
		}
	}
}
