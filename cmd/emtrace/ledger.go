package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"time"

	"emvia/internal/serve"
)

// runLedger implements `emtrace ledger`: a summary report over one or more
// emserve run-ledger files (JSONL, one LedgerRecord per terminal job).
func runLedger(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emtrace ledger", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 12, "stages listed in the breakdown table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: emtrace ledger [-top N] ledger.jsonl [more.jsonl ...]")
		return 2
	}
	var recs []serve.LedgerRecord
	totalSkipped := 0
	for _, path := range fs.Args() {
		r, skipped, err := serve.ReadLedger(path)
		if err != nil {
			fmt.Fprintf(stderr, "emtrace: %v\n", err)
			return 1
		}
		recs = append(recs, r...)
		totalSkipped += skipped
	}
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "emtrace: no ledger records found")
		return 1
	}
	ledgerReport(stdout, recs, totalSkipped, *top)
	return 0
}

// ledgerReport renders job outcomes, throughput, dedup rate, latency
// percentiles and the per-stage time breakdown.
func ledgerReport(w io.Writer, recs []serve.LedgerRecord, skipped, top int) {
	fmt.Fprintf(w, "=== run ledger: %d records", len(recs))
	if skipped > 0 {
		fmt.Fprintf(w, " (%d corrupt lines skipped)", skipped)
	}
	fmt.Fprintln(w, " ===")

	// Outcomes, dedup dispositions and trial totals.
	outcomes := make(map[string]int)
	dedup := 0
	var trialsDone, trialsTotal int64
	var queueWaits, walls []float64
	stageSum := make(map[string]float64)
	stageCnt := make(map[string]int)
	shardedJobs, totalShards, reissued := 0, 0, 0
	mergeTotal := 0.0
	var tMin, tMax time.Time
	for _, r := range recs {
		if r.Shards > 1 {
			shardedJobs++
			totalShards += r.Shards
			reissued += r.ShardsReissued
			mergeTotal += r.MergeSeconds
		}
		outcomes[r.Outcome]++
		if r.Dedup != "" {
			dedup++
		}
		trialsDone += r.TrialsDone
		trialsTotal += r.TrialsTotal
		// Dedup'd jobs never queued or ran; keep their zero wait/wall out of
		// the execution-latency percentiles.
		if r.Dedup == "" {
			queueWaits = append(queueWaits, r.QueueWaitSeconds)
			walls = append(walls, r.WallSeconds)
		}
		for stage, sec := range r.StageSeconds {
			stageSum[stage] += sec
			stageCnt[stage]++
		}
		if ts, err := time.Parse(time.RFC3339Nano, r.Time); err == nil {
			if tMin.IsZero() || ts.Before(tMin) {
				tMin = ts
			}
			if ts.After(tMax) {
				tMax = ts
			}
		}
	}

	names := make([]string, 0, len(outcomes))
	for o := range outcomes {
		names = append(names, o)
	}
	sort.Strings(names)
	fmt.Fprint(w, "outcomes:")
	for _, o := range names {
		fmt.Fprintf(w, " %s=%d", o, outcomes[o])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "dedup rate: %d/%d (%.1f%%) answered from the result cache\n",
		dedup, len(recs), 100*float64(dedup)/float64(len(recs)))
	if trialsTotal > 0 {
		fmt.Fprintf(w, "trials: %d/%d completed\n", trialsDone, trialsTotal)
	}
	if shardedJobs > 0 {
		fmt.Fprintf(w, "sharding: %d jobs sharded, %.3g shards/job, %d reissued, merge %.4gs total\n",
			shardedJobs, float64(totalShards)/float64(shardedJobs), reissued, mergeTotal)
	}
	if !tMin.IsZero() && tMax.After(tMin) {
		span := tMax.Sub(tMin).Seconds()
		fmt.Fprintf(w, "throughput: %d jobs over %.3gs (%.3g jobs/s)\n",
			len(recs), span, float64(len(recs))/span)
	}

	if len(queueWaits) > 0 {
		sort.Float64s(queueWaits)
		sort.Float64s(walls)
		fmt.Fprintf(w, "  %-16s %10s %10s %10s %10s\n", "latency", "p50", "p90", "p99", "max")
		fmt.Fprintf(w, "  %-16s %9.3gs %9.3gs %9.3gs %9.3gs\n", "queue-wait",
			quantile(queueWaits, 0.5), quantile(queueWaits, 0.9), quantile(queueWaits, 0.99), queueWaits[len(queueWaits)-1])
		fmt.Fprintf(w, "  %-16s %9.3gs %9.3gs %9.3gs %9.3gs\n", "wall-clock",
			quantile(walls, 0.5), quantile(walls, 0.9), quantile(walls, 0.99), walls[len(walls)-1])
	}

	if len(stageSum) > 0 {
		total := 0.0
		for _, s := range stageSum {
			total += s
		}
		stages := make([]string, 0, len(stageSum))
		for s := range stageSum {
			stages = append(stages, s)
		}
		sort.Slice(stages, func(i, j int) bool {
			if stageSum[stages[i]] != stageSum[stages[j]] {
				return stageSum[stages[i]] > stageSum[stages[j]]
			}
			return stages[i] < stages[j]
		})
		if len(stages) > top {
			stages = stages[:top]
		}
		fmt.Fprintln(w, "stage breakdown (total time across jobs):")
		fmt.Fprintf(w, "  %-16s %8s %12s %8s\n", "stage", "jobs", "total", "share")
		for _, s := range stages {
			share := 0.0
			if total > 0 {
				share = 100 * stageSum[s] / total
			}
			fmt.Fprintf(w, "  %-16s %8d %11.4gs %7.1f%%\n", s, stageCnt[s], stageSum[s], share)
		}
	}
}
