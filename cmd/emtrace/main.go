// Command emtrace analyzes the observability artifacts of the EM pipeline:
// the JSONL failure-cascade traces written by emgrid/emsweep/paperfigs
// -trace, and the run ledger written by emserve.
//
// Usage:
//
//	emtrace [-top N] [-noplot] trace.jsonl [more.jsonl ...]
//	emtrace -                      # read a trace from stdin
//	emtrace ledger [-top N] ledger.jsonl [more.jsonl ...]
//
// The trace report covers per-run cascade statistics, failure-order
// histograms by component family (mesh pattern / via position), the
// cascade-length distribution, and a time-to-spec vs first-failure scatter.
// The ledger report covers job outcomes, throughput, dedup rate,
// queue-wait/wall-clock percentiles and the per-stage latency breakdown.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"emvia/internal/phys"
	"emvia/internal/textplot"
	"emvia/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, "usage:")
	fmt.Fprintln(stderr, "  emtrace [-top N] [-noplot] trace.jsonl [more.jsonl ...]")
	fmt.Fprintln(stderr, "  emtrace -          (read a trace from stdin)")
	fmt.Fprintln(stderr, "  emtrace ledger [-top N] ledger.jsonl [more.jsonl ...]")
}

// run dispatches the subcommand and returns the process exit code. An
// unknown subcommand — a first argument that is not a flag, not stdin and
// not an existing file — is a usage error, not a silent empty report.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch arg := args[0]; {
		case arg == "ledger":
			return runLedger(args[1:], stdout, stderr)
		case arg == "help", arg == "-h", arg == "--help":
			usage(stderr)
			return 0
		case arg != "-" && !strings.HasPrefix(arg, "-"):
			if _, err := os.Stat(arg); err != nil {
				fmt.Fprintf(stderr, "emtrace: unknown subcommand or missing file %q\n", arg)
				usage(stderr)
				return 2
			}
		}
	}
	return runTraces(args, stdout, stderr)
}

// runTraces is the default subcommand: the cascade-trace report.
func runTraces(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 8, "component families listed per histogram")
	noplot := fs.Bool("noplot", false, "skip the time-to-spec scatter plot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		usage(stderr)
		return 2
	}
	var runs []*runStats
	byKey := make(map[runKey]*runStats)
	var spans spanStats
	for _, path := range fs.Args() {
		var r io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(stderr, "emtrace: %v\n", err)
				return 1
			}
			defer f.Close()
			r = f
		}
		if err := readTrace(r, byKey, &runs, &spans); err != nil {
			fmt.Fprintf(stderr, "emtrace: %s: %v\n", path, err)
			return 1
		}
	}
	if len(runs) == 0 && spans.count == 0 {
		fmt.Fprintln(stderr, "emtrace: no events found")
		return 1
	}
	for _, rs := range runs {
		rs.report(stdout, *top, !*noplot)
	}
	spans.report(stdout)
	return 0
}

type runKey struct {
	name string
	seq  int64
}

// runStats accumulates the cascade statistics of one Monte-Carlo run.
type runStats struct {
	key    runKey
	trials map[int]bool
	// components is the per-trial component count (from trial_begin).
	components int
	// lengths tallies trials by total failure count (cascade length).
	lengths map[int]int
	// firstCounts/orderSum/orderCnt aggregate per component family: how often
	// the family fails first, and its mean position in the failure order.
	firstCounts map[string]int
	orderSum    map[string]float64
	orderCnt    map[string]int
	// firstTimes/specTimes pair each spec-violating trial's first-failure
	// time with its time-to-spec (seconds).
	firstTimes, specTimes []float64
	// ttfs are the finite system TTFs; infTTF counts never-failed trials.
	ttfs   []float64
	infTTF int

	// per-trial scan state
	curTrial   int
	curOrder   int
	curFirst   float64
	curHasSpec bool
	curSpec    float64
}

type spanStats struct {
	count int
	byLbl map[string]struct {
		n     int
		durNS int64
	}
}

// family reduces a component label to its histogram family: the text before
// the "(coords)" suffix — the mesh pattern for grid arrays ("Plus-shaped"),
// "via" for in-array vias. Unlabeled components group under "(unlabeled)".
func family(label string) string {
	if label == "" {
		return "(unlabeled)"
	}
	if i := strings.IndexByte(label, '('); i > 0 {
		return label[:i]
	}
	return label
}

// readTrace folds one JSONL stream into the per-run aggregates. Events of a
// trial are contiguous (the tracer merges per-trial buffers), so per-trial
// state lives in the runStats scan fields.
func readTrace(r io.Reader, byKey map[runKey]*runStats, runs *[]*runStats, spans *spanStats) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if e.Type == trace.EvSpan {
			if spans.byLbl == nil {
				spans.byLbl = make(map[string]struct {
					n     int
					durNS int64
				})
			}
			spans.count++
			s := spans.byLbl[e.Label]
			s.n++
			s.durNS += e.DurNS
			spans.byLbl[e.Label] = s
			continue
		}
		k := runKey{e.Run, e.Seq}
		rs, ok := byKey[k]
		if !ok {
			rs = &runStats{
				key:         k,
				trials:      make(map[int]bool),
				lengths:     make(map[int]int),
				firstCounts: make(map[string]int),
				orderSum:    make(map[string]float64),
				orderCnt:    make(map[string]int),
				curTrial:    -1,
			}
			byKey[k] = rs
			*runs = append(*runs, rs)
		}
		rs.add(e)
	}
	return sc.Err()
}

func (rs *runStats) add(e trace.Event) {
	rs.trials[e.Trial] = true
	if e.Trial != rs.curTrial {
		rs.curTrial = e.Trial
		rs.curOrder = 0
		rs.curHasSpec = false
	}
	switch e.Type {
	case trace.EvTrialBegin:
		rs.components = e.N
	case trace.EvFail:
		rs.curOrder++
		if rs.curOrder == 1 {
			rs.curFirst = e.T
			rs.firstCounts[family(e.Label)]++
		}
		f := family(e.Label)
		rs.orderSum[f] += float64(rs.curOrder)
		rs.orderCnt[f]++
	case trace.EvSpec:
		if !rs.curHasSpec {
			rs.curHasSpec = true
			rs.curSpec = e.T
		}
	case trace.EvTrialEnd:
		rs.lengths[e.N]++
		if math.IsInf(e.V, 1) {
			rs.infTTF++
		} else {
			rs.ttfs = append(rs.ttfs, e.V)
		}
		if rs.curHasSpec && rs.curOrder > 0 {
			rs.firstTimes = append(rs.firstTimes, rs.curFirst)
			rs.specTimes = append(rs.specTimes, rs.curSpec)
		}
	}
}

func (rs *runStats) report(w io.Writer, top int, plot bool) {
	fmt.Fprintf(w, "=== run %s (seq %d): %d trials", rs.key.name, rs.key.seq, len(rs.trials))
	if rs.components > 0 {
		fmt.Fprintf(w, ", %d components", rs.components)
	}
	fmt.Fprintln(w, " ===")

	if len(rs.ttfs) > 0 {
		sorted := append([]float64(nil), rs.ttfs...)
		sort.Float64s(sorted)
		fmt.Fprintf(w, "system TTF: median %.3g y, min %.3g y, max %.3g y (%d finite, %d never failed)\n",
			phys.SecondsToYears(quantile(sorted, 0.5)),
			phys.SecondsToYears(sorted[0]),
			phys.SecondsToYears(sorted[len(sorted)-1]),
			len(sorted), rs.infTTF)
	} else if rs.infTTF > 0 {
		fmt.Fprintf(w, "system TTF: no trial reached the failure criterion (%d trials)\n", rs.infTTF)
	}

	// Cascade-length distribution.
	fmt.Fprintln(w, "cascade length (failures per trial):")
	lengths := make([]int, 0, len(rs.lengths))
	for l := range rs.lengths {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	maxCount := 0
	for _, c := range rs.lengths {
		if c > maxCount {
			maxCount = c
		}
	}
	for _, l := range lengths {
		c := rs.lengths[l]
		bar := strings.Repeat("#", (c*40+maxCount-1)/maxCount)
		fmt.Fprintf(w, "  %4d %-40s %d\n", l, bar, c)
	}

	// Failure-order histogram by family.
	if len(rs.orderCnt) > 0 {
		fmt.Fprintf(w, "failure order by component family (top %d):\n", top)
		fams := make([]string, 0, len(rs.orderCnt))
		for f := range rs.orderCnt {
			fams = append(fams, f)
		}
		sort.Slice(fams, func(i, j int) bool {
			if rs.firstCounts[fams[i]] != rs.firstCounts[fams[j]] {
				return rs.firstCounts[fams[i]] > rs.firstCounts[fams[j]]
			}
			return fams[i] < fams[j]
		})
		if len(fams) > top {
			fams = fams[:top]
		}
		fmt.Fprintf(w, "  %-24s %12s %12s %16s\n", "family", "failures", "first-fails", "mean order pos")
		for _, f := range fams {
			fmt.Fprintf(w, "  %-24s %12d %12d %16.2f\n",
				f, rs.orderCnt[f], rs.firstCounts[f], rs.orderSum[f]/float64(rs.orderCnt[f]))
		}
	}

	// Time-to-spec vs first-failure scatter.
	if plot && len(rs.firstTimes) > 1 {
		xs := make([]float64, len(rs.firstTimes))
		ys := make([]float64, len(rs.specTimes))
		for i := range xs {
			xs[i] = phys.SecondsToYears(rs.firstTimes[i])
			ys[i] = phys.SecondsToYears(rs.specTimes[i])
		}
		p := textplot.Plot{
			Title:  fmt.Sprintf("time to spec violation vs first failure — %s", rs.key.name),
			XLabel: "first component failure (years)",
			YLabel: "spec violation (years)",
			Height: 16,
		}
		if err := p.Add(textplot.Series{Name: "trial", X: xs, Y: ys}); err == nil {
			p.Render(w) //nolint:errcheck // best-effort plot
		}
	}
	fmt.Fprintln(w)
}

func (ss *spanStats) report(w io.Writer) {
	if ss.count == 0 {
		return
	}
	fmt.Fprintf(w, "=== %d wall-clock stage spans ===\n", ss.count)
	labels := make([]string, 0, len(ss.byLbl))
	for l := range ss.byLbl {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return ss.byLbl[labels[i]].durNS > ss.byLbl[labels[j]].durNS })
	fmt.Fprintf(w, "  %-32s %8s %14s\n", "stage", "count", "total")
	for _, l := range labels {
		s := ss.byLbl[l]
		fmt.Fprintf(w, "  %-32s %8d %13.3fs\n", l, s.n, float64(s.durNS)/1e9)
	}
}

// quantile returns the q-quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
