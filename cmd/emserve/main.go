// Command emserve runs the EM-analysis job service: an HTTP/JSON API that
// accepts power-grid analysis jobs (inline SPICE decks or synthetic-grid
// specs plus engine/Monte-Carlo options), executes them through the
// pdn/mc engines behind a bounded queue, and serves content-addressed
// result manifests.
//
//	emserve -addr localhost:8415 -queue 8 -job-workers 4 -resultdir results/
//
// Endpoints:
//
//	POST /v1/jobs               submit a job spec (202 queued, 200 dedup'd,
//	                            429 queue full, 503 draining)
//	GET  /v1/jobs/{id}          job status with live trial progress
//	GET  /v1/jobs/{id}/events   Server-Sent-Events cascade stream
//	GET  /v1/jobs/{id}/timeline per-job stage timeline (admit → queue-wait
//	                            → resolve → compile → factorize → screen →
//	                            mc → manifest)
//	GET  /v1/jobs/{id}/result   canonical result manifest (504 after a
//	                            job deadline, with partial progress in
//	                            the status endpoint)
//	/status, /metrics,          the monitor endpoints (JSON status and
//	/debug/vars, /debug/pprof   Prometheus exposition), on the same listener
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected with 503
// while admitted jobs run to completion (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emvia/internal/monitor"
	"emvia/internal/serve"
	"emvia/internal/spice"
	"emvia/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "emserve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:8415", "listen address (use :0 for an ephemeral port)")
	queueCap := flag.Int("queue", 8, "admission queue capacity (further submissions get 429)")
	jobWorkers := flag.Int("job-workers", 1, "Monte-Carlo worker budget per job (wall-clock only; results are worker-count invariant)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job execution deadline (specs may set a shorter timeout_seconds)")
	maxAttempts := flag.Int("max-attempts", 3, "execution attempts per job for transient failures")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "delay before the first retry, doubling per attempt")
	resultDir := flag.String("resultdir", "", "persist result manifests here (content-addressed; empty = memory only)")
	ledgerPath := flag.String("ledger", "", "append one JSONL record per terminal job here (empty = <resultdir>/ledger.jsonl when -resultdir is set; \"-\" disables)")
	ringSize := flag.Int("ring", 1024, "trace ring capacity (live progress and SSE window)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "bound on graceful drain at shutdown")
	solverFlag := flag.String("solver", "", "linear solver backend: auto, cg, direct, sparse (empty = auto)")
	flag.Parse()

	if *solverFlag != "" {
		mode, err := spice.ParseSolverMode(*solverFlag)
		if err != nil {
			return err
		}
		spice.SetDefaultSolver(mode)
	}

	// Install the trace ring before NewServer so the server adopts it; the
	// same ring feeds job progress, SSE streams and the monitor /status.
	ring := trace.NewRing(*ringSize)
	trace.SetDefault(trace.New(trace.Options{Ring: ring, DisableSamples: true}))

	srv := serve.NewServer(serve.Config{
		QueueCap:       *queueCap,
		JobWorkers:     *jobWorkers,
		DefaultTimeout: *jobTimeout,
		MaxAttempts:    *maxAttempts,
		RetryBackoff:   *retryBackoff,
		ResultDir:      *resultDir,
		LedgerPath:     *ledgerPath,
	})

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	monitor.Register(mux, monitor.Options{Ring: srv.Ring()})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Printf("emserve: listening on http://%s", ln.Addr())
	go httpSrv.Serve(ln) //nolint:errcheck // Serve always returns on Shutdown/Close

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	// Drain first — admission flips to 503 immediately, admitted jobs run to
	// completion — then shut the listener down so in-flight HTTP responses
	// (result fetches, SSE streams) get their bounded grace period too.
	log.Printf("emserve: draining (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close() //nolint:errcheck // hard close after a stuck graceful shutdown
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("emserve: drained, bye")
	return nil
}
