// Command emserve runs the EM-analysis job service: an HTTP/JSON API that
// accepts power-grid analysis jobs (inline SPICE decks or synthetic-grid
// specs plus engine/Monte-Carlo options), executes them through the
// pdn/mc engines behind a bounded queue, and serves content-addressed
// result manifests.
//
//	emserve -addr localhost:8415 -queue 8 -job-workers 4 -resultdir results/
//
// Endpoints:
//
//	POST /v1/jobs               submit a job spec (202 queued, 200 dedup'd,
//	                            429 queue full, 503 draining)
//	GET  /v1/jobs/{id}          job status with live trial progress
//	GET  /v1/jobs/{id}/events   Server-Sent-Events cascade stream
//	GET  /v1/jobs/{id}/timeline per-job stage timeline (admit → queue-wait
//	                            → resolve → compile → factorize → screen →
//	                            mc → manifest)
//	GET  /v1/jobs/{id}/result   canonical result manifest (504 after a
//	                            job deadline, with partial progress in
//	                            the status endpoint)
//	POST /v1/shards             execute one trial-range shard of a job
//	                            (fleet-internal: coordinators dispatch here)
//	GET/PUT /v1/partials/...    the content-addressed partial-manifest cache
//	/status, /metrics,          the monitor endpoints (JSON status and
//	/debug/vars, /debug/pprof   Prometheus exposition), on the same listener
//
// With -shards K > 1 each Monte-Carlo job's trial range is split into K
// contiguous shards, dispatched to the -workers fleet (or a local executor
// pool when none are configured) and merged into a result manifest that is
// byte-identical to the single-process run:
//
//	emserve -addr :8416 &                         # worker 1
//	emserve -addr :8417 &                         # worker 2
//	emserve -addr :8415 -shards 4 \
//	        -workers localhost:8416,localhost:8417 \
//	        -advertise http://localhost:8415      # coordinator
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected with 503
// while admitted jobs run to completion (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"emvia/internal/monitor"
	"emvia/internal/serve"
	"emvia/internal/spice"
	"emvia/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "emserve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:8415", "listen address (use :0 for an ephemeral port)")
	queueCap := flag.Int("queue", 8, "admission queue capacity (further submissions get 429)")
	jobWorkers := flag.Int("job-workers", 1, "Monte-Carlo worker budget per job (wall-clock only; results are worker-count invariant)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job execution deadline (specs may set a shorter timeout_seconds)")
	maxAttempts := flag.Int("max-attempts", 3, "execution attempts per job for transient failures")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "delay before the first retry, doubling per attempt")
	resultDir := flag.String("resultdir", "", "persist result manifests here (content-addressed; empty = memory only)")
	ledgerPath := flag.String("ledger", "", "append one JSONL record per terminal job here (empty = <resultdir>/ledger.jsonl when -resultdir is set; \"-\" disables)")
	ringSize := flag.Int("ring", 1024, "trace ring capacity (live progress and SSE window)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "bound on graceful drain at shutdown")
	solverFlag := flag.String("solver", "", "linear solver backend: auto, cg, direct, sparse (empty = auto)")
	shards := flag.Int("shards", 0, "split each Monte-Carlo job into this many trial-range shards (0/1 = no sharding); merged manifests are byte-identical to single-process runs")
	workers := flag.String("workers", "", "comma-separated worker emserve addresses (host:port or URLs) to dispatch shards to; empty with -shards > 1 runs shards in a local executor pool")
	shardSlots := flag.Int("shard-slots", 2, "concurrently executing inbound shard requests (the worker side of dispatch)")
	shardTimeout := flag.Duration("shard-timeout", 60*time.Second, "per-attempt bound on one remote shard dispatch; expiry re-issues the shard to the next worker")
	shardAttempts := flag.Int("shard-attempts", 3, "dispatch attempts per shard including the final always-local run")
	advertise := flag.String("advertise", "", "this coordinator's externally reachable base URL; workers replicate partial manifests through it (empty = no cache replication)")
	flag.Parse()

	if *solverFlag != "" {
		mode, err := spice.ParseSolverMode(*solverFlag)
		if err != nil {
			return err
		}
		spice.SetDefaultSolver(mode)
	}

	// Install the trace ring before NewServer so the server adopts it; the
	// same ring feeds job progress, SSE streams and the monitor /status.
	ring := trace.NewRing(*ringSize)
	trace.SetDefault(trace.New(trace.Options{Ring: ring, DisableSamples: true}))

	var shardWorkers []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			shardWorkers = append(shardWorkers, w)
		}
	}

	srv := serve.NewServer(serve.Config{
		QueueCap:       *queueCap,
		JobWorkers:     *jobWorkers,
		DefaultTimeout: *jobTimeout,
		MaxAttempts:    *maxAttempts,
		RetryBackoff:   *retryBackoff,
		ResultDir:      *resultDir,
		LedgerPath:     *ledgerPath,
		Shards:         *shards,
		ShardWorkers:   shardWorkers,
		ShardSlots:     *shardSlots,
		ShardTimeout:   *shardTimeout,
		ShardAttempts:  *shardAttempts,
		AdvertiseURL:   *advertise,
	})

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	monitor.Register(mux, monitor.Options{Ring: srv.Ring()})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Printf("emserve: listening on http://%s", ln.Addr())
	go httpSrv.Serve(ln) //nolint:errcheck // Serve always returns on Shutdown/Close

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	// Drain first — admission flips to 503 immediately, admitted jobs run to
	// completion — then shut the listener down so in-flight HTTP responses
	// (result fetches, SSE streams) get their bounded grace period too.
	log.Printf("emserve: draining (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close() //nolint:errcheck // hard close after a stuck graceful shutdown
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("emserve: drained, bye")
	return nil
}
